"""Row-sparse COO tensors with PyTorch-equivalent semantics.

Embedding gradients are sparse along the row (vocabulary) dimension only:
an entry is a ``(row_index, value_vector)`` pair.  This matches how PyTorch
represents ``Embedding(sparse=True)`` gradients, and it is the object that
EmbRace's Vertical Sparse Scheduling (Algorithm 1) manipulates:

* ``coalesce``   — sum rows with duplicate indices (COALESCE in Alg. 1),
* ``index_select`` — pick the sub-gradient for a set of rows
  (INDEX_SELECT in Alg. 1, used to form prior/delayed parts),
* ``to_dense`` / ``add_to`` — materialize or scatter-add into a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def sorted_union(arrays: list[np.ndarray]) -> np.ndarray:
    """Sorted-unique union of sorted-unique int64 index sets.

    Concatenate, radix-sort (numpy's stable sort for ints, O(n)), and
    drop adjacent duplicates.  Exact — integer set union — and an order
    of magnitude faster than chaining ``np.union1d``, which re-hashes
    the accumulated set at every step.
    """
    arrays = [a for a in arrays if len(a)]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    if len(arrays) == 1:
        return arrays[0]
    cat = np.concatenate(arrays)
    cat.sort(kind="stable")
    keep = np.empty(len(cat), dtype=np.bool_)
    keep[0] = True
    np.not_equal(cat[1:], cat[:-1], out=keep[1:])
    return cat[keep]


@dataclass
class SparseRows:
    """A row-sparse 2-D tensor: ``values[k]`` belongs to row ``indices[k]``.

    Invariants enforced at construction: ``indices`` is 1-D int64,
    ``values`` is 2-D float with ``len(values) == len(indices)``, and all
    indices lie in ``[0, num_rows)``.
    """

    indices: np.ndarray
    values: np.ndarray
    num_rows: int
    coalesced: bool = False
    # Lazily-computed distinct-row count; coalesced tensors know it for free.
    _distinct_rows: int | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.values = np.asarray(self.values)
        if self.indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {self.indices.shape}")
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {self.values.shape}")
        if len(self.indices) != len(self.values):
            raise ValueError(
                f"{len(self.indices)} indices vs {len(self.values)} value rows"
            )
        if self.num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {self.num_rows}")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_rows
        ):
            raise ValueError(
                f"indices out of range [0, {self.num_rows}): "
                f"[{self.indices.min()}, {self.indices.max()}]"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_rows: int, dim: int, dtype=np.float64) -> "SparseRows":
        """A sparse tensor with no stored rows."""
        return cls(
            indices=np.empty(0, dtype=np.int64),
            values=np.empty((0, dim), dtype=dtype),
            num_rows=num_rows,
            coalesced=True,
        )

    @classmethod
    def merge_coalesced(
        cls,
        parts: list[tuple[np.ndarray, np.ndarray]],
        num_rows: int,
        dim: int,
        dtype=np.float64,
        union: np.ndarray | None = None,
    ) -> "SparseRows":
        """Merge sorted-unique ``(indices, values)`` runs into one tensor.

        Each part is a sorted run (an already-coalesced gradient);
        positions come from a ``searchsorted`` into the merged index
        ``union`` (computed here unless the caller already tracked it)
        and values accumulate part by part in list order.  Per output
        row the first contribution is *assigned* (so ``-0.0`` survives)
        and later ones add **left-to-right in part order** — the
        ``np.add.at`` scatter grouping, which the sparse collectives
        define as the canonical cross-rank sum.  Note this is not
        always ``concat(parts).coalesce()`` to the last bit: for rows
        contributed by four or more parts, ``coalesce``'s ``reduceat``
        uses pairwise summation, which may differ by an ulp.

        The sparse collectives' hot finish: merging the per-rank parts
        this way is several times cheaper than sorting their
        concatenation.  High-coverage merges (parts totalling a quarter
        of the row space or more) scatter into a dense ``(num_rows,
        dim)`` accumulator by raw row index instead — no searchsorted,
        union from the written mask — with a bit-identical result.
        """
        total = sum(len(idx) for idx, _ in parts)
        if union is None and total * 4 >= num_rows:
            # Dense-accumulator finish: when the parts cover a sizable
            # fraction of the row space, scatter by raw row index into a
            # (num_rows, dim) scratch — no searchsorted, and the union
            # falls out of the written mask.  Same assign-then-add
            # sequence per row, so bit-identical to the sparse finish.
            acc = np.empty((num_rows, dim), dtype=dtype)
            written = np.zeros(num_rows, dtype=np.bool_)
            for idx, vals in parts:
                if len(idx) == 0:
                    continue
                seen = written[idx]
                if seen.any():
                    fresh = ~seen
                    acc[idx[fresh]] = vals[fresh]
                    acc[idx[seen]] += vals[seen]
                else:
                    acc[idx] = vals
                written[idx] = True
            rows = np.flatnonzero(written)
            return cls(rows, acc[rows], num_rows, coalesced=True)
        if union is None:
            union = sorted_union([idx for idx, _ in parts])
        if len(union) == 0:
            return cls.empty(num_rows, dim, dtype=dtype)
        out = np.empty((len(union), dim), dtype=dtype)
        written = np.zeros(len(union), dtype=np.bool_)
        for idx, vals in parts:
            if len(idx) == 0:
                continue
            pos = np.searchsorted(union, idx)
            seen = written[pos]
            if seen.any():
                fresh = ~seen
                out[pos[fresh]] = vals[fresh]
                out[pos[seen]] += vals[seen]
            else:
                out[pos] = vals
            written[pos] = True
        return cls(np.asarray(union), out, num_rows, coalesced=True)

    @classmethod
    def from_dense(cls, dense: np.ndarray, atol: float = 0.0) -> "SparseRows":
        """Extract the rows of ``dense`` whose max-abs exceeds ``atol``."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"from_dense requires a 2-D array, got {dense.shape}")
        mask = np.abs(dense).max(axis=1) > atol
        idx = np.nonzero(mask)[0].astype(np.int64)
        return cls(idx, dense[idx].copy(), dense.shape[0], coalesced=True)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nnz_rows(self) -> int:
        """Number of stored (possibly duplicate) rows."""
        return len(self.indices)

    @property
    def dim(self) -> int:
        """Row width (embedding dimension)."""
        return self.values.shape[1]

    @property
    def nbytes(self) -> int:
        """Wire size: value payload plus 8-byte indices."""
        return int(self.values.nbytes + self.indices.nbytes)

    @property
    def density(self) -> float:
        """Fraction of distinct rows stored, in [0, 1]."""
        if self.nnz_rows == 0:
            return 0.0
        if self._distinct_rows is None:
            self._distinct_rows = (
                self.nnz_rows if self.coalesced else len(np.unique(self.indices))
            )
        return self._distinct_rows / self.num_rows

    def __len__(self) -> int:
        return self.nnz_rows

    # ------------------------------------------------------------------ #
    # Core operations (Algorithm 1 building blocks)
    # ------------------------------------------------------------------ #
    def coalesce(self) -> "SparseRows":
        """Sum duplicate row indices into single rows; sort by index.

        Equivalent to ``torch.sparse_coo_tensor(...).coalesce()`` restricted
        to row sparsity.  Idempotent; returns self when already coalesced.
        """
        if self.coalesced:
            return self
        if self.nnz_rows == 0:
            return SparseRows(self.indices, self.values, self.num_rows, coalesced=True)
        # Stable sort keeps duplicates in storage order; grouping follows
        # ``np.add.reduceat`` exactly.  Duplicates are typically rare
        # (embedding batches draw far fewer rows than the vocabulary), so
        # groups of up to four rows are summed vectorized in reduceat's
        # empirically-pinned fold order — bit-identical, guarded by the
        # randomized equivalence test — and only the rare larger groups
        # run reduceat itself, on their own slice.  A duplicate-heavy
        # input falls back to one full reduceat pass.
        order = np.argsort(self.indices, kind="stable")
        sorted_idx = self.indices[order]
        starts = np.flatnonzero(np.r_[True, sorted_idx[1:] != sorted_idx[:-1]])
        counts = np.diff(starts, append=len(sorted_idx))
        big = np.flatnonzero(counts >= 5)
        if len(big) > max(64, len(starts) // 16):
            summed = np.add.reduceat(
                np.take(self.values, order, axis=0), starts, axis=0
            )
        else:
            # Gather source rows through the composed index (``order`` at
            # each group offset) instead of materializing the permuted
            # copy: every source row is read exactly once.
            v = self.values
            summed = np.empty((len(starts), self.dim), dtype=v.dtype)
            ones = counts == 1
            summed[ones] = v[order[starts[ones]]]
            twos = counts == 2
            s2 = starts[twos]
            if len(s2):
                summed[twos] = v[order[s2]] + v[order[s2 + 1]]
            threes = counts == 3
            s3 = starts[threes]
            if len(s3):  # reduceat folds a 3-group as x0 + (x1 + x2)
                summed[threes] = v[order[s3]] + (v[order[s3 + 1]] + v[order[s3 + 2]])
            fours = counts == 4
            s4 = starts[fours]
            if len(s4):  # ... and a 4-group as x0 + ((x1 + x2) + x3)
                summed[fours] = v[order[s4]] + (
                    (v[order[s4 + 1]] + v[order[s4 + 2]]) + v[order[s4 + 3]]
                )
            for j in big:
                s = starts[j]
                summed[j] = np.add.reduceat(
                    v[order[s : s + counts[j]]], [0], axis=0
                )[0]
        return SparseRows(sorted_idx[starts], summed, self.num_rows, coalesced=True)

    def index_select(self, rows: np.ndarray) -> "SparseRows":
        """Sub-gradient containing only the stored rows whose index is in ``rows``.

        Rows requested but not stored are simply absent from the result
        (their gradient is zero).  The input may be unsorted and contain
        duplicates; the output follows this tensor's storage order.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if len(rows) and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise ValueError(
                f"requested rows out of range [0, {self.num_rows})"
            )
        mask = np.isin(self.indices, rows, assume_unique=False)
        return SparseRows(
            self.indices[mask],
            self.values[mask].copy(),
            self.num_rows,
            coalesced=self.coalesced,
        )

    def split(self, rows: np.ndarray) -> tuple["SparseRows", "SparseRows"]:
        """Partition into (rows in ``rows``, rows not in ``rows``).

        This is the prior/delayed split of Algorithm 1 expressed on the
        tensor itself; the two parts are disjoint and together hold exactly
        the stored rows.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        mask = np.isin(self.indices, rows)
        inside = SparseRows(
            self.indices[mask], self.values[mask].copy(), self.num_rows, self.coalesced
        )
        outside = SparseRows(
            self.indices[~mask], self.values[~mask].copy(), self.num_rows, self.coalesced
        )
        return inside, outside

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ``(num_rows, dim)`` array (sums duplicates)."""
        out = np.zeros((self.num_rows, self.dim), dtype=self.values.dtype)
        np.add.at(out, self.indices, self.values)
        return out

    def add_to(self, table: np.ndarray, scale: float = 1.0) -> None:
        """Scatter-add ``scale * values`` into ``table`` in place."""
        table = np.asarray(table)
        if table.shape != (self.num_rows, self.dim):
            raise ValueError(
                f"table shape {table.shape} != ({self.num_rows}, {self.dim})"
            )
        np.add.at(table, self.indices, scale * self.values)

    def scale(self, factor: float) -> "SparseRows":
        """Return a copy with values multiplied by ``factor``."""
        return SparseRows(
            self.indices.copy(), self.values * factor, self.num_rows, self.coalesced
        )

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    @staticmethod
    def concat(parts: list["SparseRows"]) -> "SparseRows":
        """Stack several sparse tensors over the same row space (no coalescing)."""
        if not parts:
            raise ValueError("concat requires at least one part")
        num_rows = parts[0].num_rows
        dim = parts[0].dim
        for p in parts[1:]:
            if p.num_rows != num_rows or p.dim != dim:
                raise ValueError("all parts must share num_rows and dim")
        return SparseRows(
            np.concatenate([p.indices for p in parts]),
            np.concatenate([p.values for p in parts]),
            num_rows,
            coalesced=False,
        )

    def __add__(self, other: "SparseRows") -> "SparseRows":
        """Sparse sum: concatenate then coalesce."""
        if not isinstance(other, SparseRows):
            return NotImplemented
        return SparseRows.concat([self, other]).coalesce()

    def allclose(self, other: "SparseRows", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Numerically compare after coalescing (order-insensitive)."""
        a, b = self.coalesce(), other.coalesce()
        if a.num_rows != b.num_rows or a.dim != b.dim:
            return False
        if not np.array_equal(a.indices, b.indices):
            return False
        return np.allclose(a.values, b.values, rtol=rtol, atol=atol)
