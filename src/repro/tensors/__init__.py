"""Tensor substrate: dense metadata wrapper and COO sparse tensors.

The EmbRace mechanisms operate on PyTorch-style COO sparse gradients
(row indices + value rows).  :class:`~repro.tensors.coo.SparseRows`
reimplements the subset of COO semantics the paper relies on —
``coalesce`` (sum duplicate rows), ``index_select`` (split into
prior/delayed parts), and dense scatter-add application.
"""

from repro.tensors.coo import SparseRows, sorted_union
from repro.tensors.dense import TensorSpec
from repro.tensors.ops import (
    rows_intersect,
    rows_setdiff,
    scatter_add_rows,
    unique_rows,
)

__all__ = [
    "SparseRows",
    "sorted_union",
    "TensorSpec",
    "rows_intersect",
    "rows_setdiff",
    "scatter_add_rows",
    "unique_rows",
]
