"""Vectorized row-set operations used throughout the scheduling layer.

Algorithm 1 of the paper is a sequence of set operations over token-id
arrays (UNIQUE, intersection, difference) plus scatter-adds; these helpers
implement them with numpy set routines so they stay O(n log n).
"""

from __future__ import annotations

import numpy as np


def unique_rows(ids: np.ndarray) -> np.ndarray:
    """Sorted unique int64 ids (UNIQUE in Algorithm 1)."""
    return np.unique(np.asarray(ids, dtype=np.int64).ravel())


def rows_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted intersection of two id sets (``i_prior`` in Algorithm 1)."""
    return np.intersect1d(
        np.asarray(a, dtype=np.int64).ravel(),
        np.asarray(b, dtype=np.int64).ravel(),
        assume_unique=False,
    )


def rows_setdiff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted ``a \\ b`` (``i_delayed`` in Algorithm 1)."""
    return np.setdiff1d(
        np.asarray(a, dtype=np.int64).ravel(),
        np.asarray(b, dtype=np.int64).ravel(),
        assume_unique=False,
    )


def scatter_add_rows(
    table: np.ndarray, indices: np.ndarray, rows: np.ndarray, scale: float = 1.0
) -> None:
    """In-place ``table[indices] += scale * rows`` with duplicate accumulation."""
    indices = np.asarray(indices, dtype=np.int64)
    rows = np.asarray(rows)
    if rows.shape[0] != indices.shape[0]:
        raise ValueError(
            f"{indices.shape[0]} indices vs {rows.shape[0]} value rows"
        )
    np.add.at(table, indices, scale * rows)
