"""Dense tensor *metadata*: shape/dtype/size bookkeeping.

The simulation side of the library never materializes paper-scale tensors
(an LM embedding is 3.1 GB); it reasons about their shapes and byte sizes.
:class:`TensorSpec` is that metadata record.  The real-execution side uses
plain ``numpy.ndarray`` values directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.units import bytes_to_mb


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype description of a (possibly never-allocated) tensor.

    Parameters
    ----------
    name:
        Stable identifier, e.g. ``"encoder.embedding.weight"``.
    shape:
        Tensor shape; must be non-empty with positive extents.
    dtype:
        Element type; defaults to float32 as in the paper's experiments.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"{self.name}: shape must be non-empty")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"{self.name}: shape extents must be positive, got {self.shape}")
        # Validate dtype eagerly so bad specs fail at construction.
        np.dtype(self.dtype)

    @property
    def numel(self) -> int:
        """Number of elements."""
        return math.prod(self.shape)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        """Total dense byte size."""
        return self.numel * self.itemsize

    @property
    def mb(self) -> float:
        """Dense size in decimal MB (paper's unit)."""
        return bytes_to_mb(self.nbytes)

    def with_rows(self, nrows: int) -> "TensorSpec":
        """Spec for ``nrows`` rows of this 2-D tensor (e.g. a sparse slice)."""
        if len(self.shape) != 2:
            raise ValueError(f"{self.name}: with_rows requires a 2-D spec, got {self.shape}")
        if not 0 < nrows:
            raise ValueError(f"nrows must be positive, got {nrows}")
        return TensorSpec(self.name, (nrows, self.shape[1]), self.dtype)

    def column_shard(self, world_size: int, rank: int) -> "TensorSpec":
        """Spec of this 2-D tensor's column-wise shard for ``rank``.

        Column-wise partitioning splits ``shape[1]`` as evenly as possible;
        the first ``shape[1] % world_size`` shards get one extra column,
        mirroring how EmbRace partitions embedding tables (§4.1.1).
        """
        if len(self.shape) != 2:
            raise ValueError(f"{self.name}: column_shard requires a 2-D spec")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world_size {world_size}")
        cols = self.shape[1]
        base, extra = divmod(cols, world_size)
        width = base + (1 if rank < extra else 0)
        if width == 0:
            raise ValueError(
                f"{self.name}: cannot split {cols} columns over {world_size} ranks"
            )
        return TensorSpec(f"{self.name}.shard{rank}", (self.shape[0], width), self.dtype)

    def row_shard(self, world_size: int, rank: int) -> "TensorSpec":
        """Spec of this 2-D tensor's row-wise shard for ``rank``."""
        if len(self.shape) != 2:
            raise ValueError(f"{self.name}: row_shard requires a 2-D spec")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world_size {world_size}")
        rows = self.shape[0]
        base, extra = divmod(rows, world_size)
        height = base + (1 if rank < extra else 0)
        if height == 0:
            raise ValueError(f"{self.name}: cannot split {rows} rows over {world_size} ranks")
        return TensorSpec(f"{self.name}.shard{rank}", (height, self.shape[1]), self.dtype)
