"""Unit constants and human-readable formatting.

The paper reports sizes in MB (10**6 bytes, matching how NCCL and the
EmbRace evaluation count payloads) and bandwidths in Gbps.  All internal
quantities in this library are plain floats in base SI units: bytes,
seconds, bytes/second.
"""

from __future__ import annotations

# Decimal units (used by the paper's MB figures).
KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0

# Binary units (used for memory-footprint accounting).
KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3


def Gbps(value: float) -> float:
    """Convert a link rate in gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


def gbps_to_bytes_per_s(value: float) -> float:
    """Alias of :func:`Gbps` with an explicit name."""
    return Gbps(value)


def bytes_to_mb(nbytes: float) -> float:
    """Bytes -> decimal megabytes (the unit used in paper Tables 1 and 3)."""
    return nbytes / MB


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count compactly, e.g. ``'252.5 MB'``."""
    if nbytes < 0:
        return "-" + fmt_bytes(-nbytes)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if nbytes >= unit:
            return f"{nbytes / unit:.1f} {name}"
    return f"{nbytes:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Format a duration compactly, e.g. ``'12.3 ms'``."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"
