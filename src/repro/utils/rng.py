"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (data generation, initialization,
dropout) takes an explicit ``numpy.random.Generator``; these helpers create
and split them reproducibly so that simulated experiments and real
multi-process runs are replayable bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed (``None`` -> OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Split one seed into ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so children never overlap regardless of how
    many draws each makes — the right tool for per-rank or per-epoch streams.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
