"""Argument-validation helpers shared across the library.

These raise early, with the offending name and value in the message, so that
misconfigured experiments fail at construction time instead of deep inside a
simulation run.
"""

from __future__ import annotations

from collections.abc import Container


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for fluent use."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for fluent use."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for fluent use."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: object, allowed: Container) -> object:
    """Require ``value in allowed``; return it for fluent use."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
