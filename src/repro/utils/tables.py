"""Minimal ASCII table rendering for benchmark and experiment reports."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """An append-only table of rows rendered with aligned columns.

    Used by the benchmark harness to print the same rows the paper's tables
    and figure series report.

    >>> t = Table(["model", "size"])
    >>> t.add_row(["LM", 3186.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    model | size
    ------+-------
    LM    | 3186.5
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}" if abs(cell) < 1e4 else f"{cell:.4e}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in self.rows
        ]
        lines = [header.rstrip(), sep]
        lines.extend(body)
        if self.title:
            lines.insert(0, self.title)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
