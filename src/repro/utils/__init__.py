"""Shared utilities: units, RNG helpers, table formatting, validation."""

from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    Gbps,
    bytes_to_mb,
    fmt_bytes,
    fmt_duration,
    gbps_to_bytes_per_s,
)
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tables import Table
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
)

__all__ = [
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "Gbps",
    "bytes_to_mb",
    "fmt_bytes",
    "fmt_duration",
    "gbps_to_bytes_per_s",
    "new_rng",
    "spawn_rngs",
    "Table",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
]
