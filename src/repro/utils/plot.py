"""Terminal plotting: ASCII line charts and bar charts.

Used by the examples and the experiment harness to render figure-like
views (throughput bars, convergence curves, sparsity sweeps) without a
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.validation import check_positive


def line_chart(
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart.

    Each series is resampled to ``width`` columns; series are drawn with
    distinct glyphs and listed in a legend.
    """
    check_positive("width", width)
    check_positive("height", height)
    if not series:
        raise ValueError("need at least one series")
    glyphs = "*o+x#@%&"
    values = [np.asarray(v, dtype=float) for v in series.values()]
    if any(len(v) == 0 for v in values):
        raise ValueError("series must be non-empty")
    lo = min(v.min() for v in values)
    hi = max(v.max() for v in values)
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height + 1)]
    for si, v in enumerate(values):
        xs = np.linspace(0, len(v) - 1, width).astype(int)
        for col, x in enumerate(xs):
            row = int(round((v[x] - lo) / span * height))
            grid[height - row][col] = glyphs[si % len(glyphs)]

    lines = []
    for i, row in enumerate(grid):
        level = hi - span * i / height
        lines.append(f"{level:10.3g} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.insert(0, y_label)
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart with value labels."""
    check_positive("width", width)
    if not values:
        raise ValueError("need at least one bar")
    peak = max(values.values())
    if peak < 0:
        raise ValueError("bar values must be non-negative")
    name_width = max(len(n) for n in values)
    lines = []
    for name, value in values.items():
        if value < 0:
            raise ValueError(f"bar values must be non-negative, got {value}")
        filled = int(round(width * (value / peak))) if peak > 0 else 0
        bar = "#" * filled
        lines.append(f"{name:>{name_width}} |{bar:<{width}} {value:,.4g}{unit}")
    return "\n".join(lines)
