"""Prediction extraction for convergence tracking.

Full autoregressive decoding is unnecessary for *tracking convergence*
(Fig. 11b traces relative BLEU progress of two training strategies on
identical data); teacher-forced argmax predictions give a BLEU proxy
that moves with model quality and is cheap and deterministic.
"""

from __future__ import annotations

import numpy as np


def teacher_forced_argmax(model, batch) -> np.ndarray:
    """Argmax token predictions from the model's last forward pass.

    Requires the model to have recorded ``_last_logits`` during
    ``forward_backward`` (all translation models do).
    """
    logits = getattr(model, "_last_logits", None)
    if logits is None:
        raise ValueError(
            f"{type(model).__name__} does not record logits; "
            "teacher-forced decoding unavailable"
        )
    return np.argmax(logits, axis=-1)
