"""Token / span accuracy metrics.

The BERT-base benchmark is SQuAD question answering (§5.2.2); its
standard metrics are span Exact-Match and token-overlap F1, implemented
here over predicted/gold ``(start, end)`` index pairs.  Token accuracy
serves the LM/translation models.
"""

from __future__ import annotations

import numpy as np


def token_accuracy(
    predictions: np.ndarray, targets: np.ndarray, pad_id: int | None = 0
) -> float:
    """Fraction of non-padding positions predicted exactly."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    if pad_id is not None:
        mask = targets != pad_id
    else:
        mask = np.ones_like(targets, dtype=bool)
    total = int(mask.sum())
    if total == 0:
        return 0.0
    return float((predictions[mask] == targets[mask]).sum() / total)


def span_exact_match(
    pred_spans: np.ndarray, gold_spans: np.ndarray
) -> float:
    """SQuAD Exact Match: both endpoints correct. Spans are (n, 2)."""
    pred_spans, gold_spans = _check_spans(pred_spans, gold_spans)
    return float(np.all(pred_spans == gold_spans, axis=1).mean())


def span_f1(pred_spans: np.ndarray, gold_spans: np.ndarray) -> float:
    """SQuAD-style token-overlap F1 averaged over examples.

    For each example, precision/recall are computed over the inclusive
    token ranges ``[start, end]``; non-overlapping spans score 0.
    """
    pred_spans, gold_spans = _check_spans(pred_spans, gold_spans)
    scores = []
    for (ps, pe), (gs, ge) in zip(pred_spans, gold_spans):
        lo, hi = max(ps, gs), min(pe, ge)
        overlap = max(0, hi - lo + 1)
        pred_len = max(0, pe - ps + 1)
        gold_len = max(0, ge - gs + 1)
        if overlap == 0 or pred_len == 0 or gold_len == 0:
            scores.append(0.0)
            continue
        precision = overlap / pred_len
        recall = overlap / gold_len
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def _check_spans(pred, gold) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=np.int64)
    gold = np.asarray(gold, dtype=np.int64)
    if pred.ndim != 2 or pred.shape[1] != 2:
        raise ValueError(f"spans must be (n, 2), got {pred.shape}")
    if pred.shape != gold.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {gold.shape}")
    if pred.shape[0] == 0:
        raise ValueError("need at least one span")
    return pred, gold
