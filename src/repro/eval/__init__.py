"""Evaluation metrics: perplexity (Fig. 11a) and BLEU (Fig. 11b)."""

from repro.eval.perplexity import perplexity, perplexity_curve
from repro.eval.bleu import bleu, sentence_ngrams
from repro.eval.decode import teacher_forced_argmax
from repro.eval.accuracy import span_exact_match, span_f1, token_accuracy
from repro.eval.search import beam_decode, greedy_decode, sequence_log_prob

__all__ = [
    "perplexity",
    "perplexity_curve",
    "bleu",
    "sentence_ngrams",
    "teacher_forced_argmax",
    "token_accuracy",
    "span_exact_match",
    "span_f1",
    "greedy_decode",
    "beam_decode",
    "sequence_log_prob",
]
