"""Perplexity: exp of mean token cross-entropy."""

from __future__ import annotations

import math

import numpy as np

#: Cap before exponentiation so early-training curves stay finite.
_MAX_LOG_PPL = 30.0


def perplexity(mean_loss: float) -> float:
    """PPL of a mean per-token cross-entropy (natural log)."""
    if mean_loss < 0:
        raise ValueError(f"cross-entropy cannot be negative, got {mean_loss}")
    return math.exp(min(mean_loss, _MAX_LOG_PPL))


def perplexity_curve(losses: list[float], smooth: int = 1) -> list[float]:
    """PPL per step, optionally smoothed with a trailing mean of ``smooth``."""
    if smooth < 1:
        raise ValueError(f"smooth must be >= 1, got {smooth}")
    out = []
    for i in range(len(losses)):
        window = losses[max(0, i - smooth + 1) : i + 1]
        out.append(perplexity(float(np.mean(window))))
    return out
