"""Autoregressive decoding: greedy and beam search.

The convergence experiments track BLEU with teacher-forced argmax (fast,
deterministic); for *real* translation quality this module decodes
autoregressively.  Both translation models expose
``decode_logits(src, partial_tgt)`` — a forward-only pass returning
next-token logits — which the searches drive position by position.
Tiny-scale models re-run the full forward per step (O(L^2) total), which
is fine at test scale and keeps the model code single-path.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.utils.validation import check_positive


def greedy_decode(
    model,
    src: np.ndarray,
    max_len: int = 16,
    bos_id: int = 1,
    eos_id: int = 2,
) -> np.ndarray:
    """Greedy autoregressive decoding of a source batch.

    Returns ``(batch, <=max_len)`` generated ids (without bos; padded
    with 0 after eos).
    """
    check_positive("max_len", max_len)
    batch = src.shape[0]
    tgt = np.full((batch, 1), bos_id, dtype=np.int64)
    finished = np.zeros(batch, dtype=bool)
    for _ in range(max_len):
        logits = model.decode_logits(src, tgt)  # (batch, len, vocab)
        next_ids = np.argmax(logits[:, -1, :], axis=-1)
        next_ids = np.where(finished, 0, next_ids)
        tgt = np.concatenate([tgt, next_ids[:, None]], axis=1)
        finished |= next_ids == eos_id
        if finished.all():
            break
    return tgt[:, 1:]


def beam_decode(
    model,
    src: np.ndarray,
    beam_size: int = 4,
    max_len: int = 16,
    bos_id: int = 1,
    eos_id: int = 2,
    length_penalty: float = 0.0,
) -> tuple[np.ndarray, float]:
    """Beam search for a *single* source sentence.

    ``src`` is ``(1, src_len)``.  Returns ``(ids, score)`` — the best
    hypothesis (without bos) and its length-normalized log-probability.
    """
    check_positive("beam_size", beam_size)
    check_positive("max_len", max_len)
    if src.shape[0] != 1:
        raise ValueError(f"beam_decode takes one sentence, got batch {src.shape[0]}")

    beams: list[tuple[list[int], float, bool]] = [([bos_id], 0.0, False)]
    for _ in range(max_len):
        candidates: list[tuple[list[int], float, bool]] = []
        for ids, score, done in beams:
            if done:
                candidates.append((ids, score, True))
                continue
            tgt = np.array([ids], dtype=np.int64)
            logits = model.decode_logits(src, tgt)
            log_probs = F.log_softmax(logits[0, -1, :])
            top = np.argsort(log_probs)[-beam_size:]
            for token in top:
                candidates.append(
                    (
                        ids + [int(token)],
                        score + float(log_probs[token]),
                        token == eos_id,
                    )
                )
        # Keep the best `beam_size` by length-normalized score.
        def norm(c):
            ids, score, _ = c
            length = max(1, len(ids) - 1)
            return score / (length**length_penalty) if length_penalty else score

        candidates.sort(key=norm, reverse=True)
        beams = candidates[:beam_size]
        if all(done for _, _, done in beams):
            break

    best_ids, best_score, _ = max(beams, key=lambda c: c[1] / max(1, len(c[0]) - 1))
    return np.array(best_ids[1:], dtype=np.int64), best_score


def sequence_log_prob(model, src: np.ndarray, tgt_ids: np.ndarray,
                      bos_id: int = 1) -> float:
    """Log-probability of a target sequence under the model (teacher-forced)."""
    tgt_ids = np.asarray(tgt_ids, dtype=np.int64).reshape(-1)
    if len(tgt_ids) == 0:
        raise ValueError("need at least one target token")
    tgt_in = np.concatenate([[bos_id], tgt_ids])[None, :-1]
    logits = model.decode_logits(src, tgt_in)
    log_probs = F.log_softmax(logits[0])
    return float(log_probs[np.arange(len(tgt_ids)), tgt_ids].sum())
