"""Corpus BLEU-4 (Papineni et al., 2002) with add-1 smoothing.

Used to trace GNMT-8 convergence (Fig. 11b).  Implemented from the
definition: geometric mean of clipped n-gram precisions (n = 1..4)
times a brevity penalty, with add-one smoothing on higher-order
precisions so early-training scores are defined.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np


def sentence_ngrams(tokens: np.ndarray, n: int) -> Counter:
    """Multiset of n-grams (as tuples) of a token-id sequence."""
    tokens = [int(t) for t in np.asarray(tokens).ravel()]
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def bleu(
    hypotheses: list[np.ndarray],
    references: list[np.ndarray],
    max_n: int = 4,
    pad_id: int | None = 0,
) -> float:
    """Corpus-level BLEU in [0, 100].

    ``pad_id`` tokens are stripped from both sides before scoring.
    """
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses vs {len(references)} references"
        )
    if not hypotheses:
        raise ValueError("bleu requires at least one sentence pair")

    def clean(seq):
        seq = np.asarray(seq).ravel()
        return seq[seq != pad_id] if pad_id is not None else seq

    hyp_len = ref_len = 0
    matches = [0] * max_n
    totals = [0] * max_n
    for hyp, ref in zip(hypotheses, references):
        hyp, ref = clean(hyp), clean(ref)
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            h = sentence_ngrams(hyp, n)
            r = sentence_ngrams(ref, n)
            totals[n - 1] += sum(h.values())
            matches[n - 1] += sum(min(c, r[g]) for g, c in h.items())

    if hyp_len == 0:
        return 0.0
    log_precisions = []
    for n in range(max_n):
        m, t = matches[n], totals[n]
        if n == 0:
            if m == 0:
                return 0.0
            p = m / t
        else:
            p = (m + 1) / (t + 1) if t > 0 else 1.0  # add-1 smoothing
        log_precisions.append(math.log(p))
    geo = math.exp(sum(log_precisions) / max_n)
    bp = 1.0 if hyp_len > ref_len else math.exp(1 - ref_len / max(hyp_len, 1))
    return 100.0 * bp * geo
