"""One-step-ahead batch prefetching.

§4.2.2: *"we adopt the data prefetch technology, which always keeps the
data of the next iteration in memory. Thanks to the prefetch, we are
aware of the data used in the next iteration."*  :class:`Prefetcher`
provides exactly that contract: ``next()`` yields the current batch
while ``peek()`` exposes the following one for Algorithm 1's
intersection.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.data.batching import Batch


class Prefetcher:
    """Wraps a batch iterator, always holding the next batch in memory."""

    def __init__(self, source: Iterator[Batch]):
        self._source = iter(source)
        self._next: Batch | None = self._pull()

    def _pull(self) -> Batch | None:
        try:
            return next(self._source)
        except StopIteration:
            return None

    def peek(self) -> Batch | None:
        """The batch the *next* call to ``next()`` will return (or None)."""
        return self._next

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        if self._next is None:
            raise StopIteration
        current, self._next = self._next, self._pull()
        return current
