"""Batch shaping: padding variable-length sentences to rectangles.

§4.2.2: *"when a tokenizer deals with sentences into uniformly shaped
batches, the same value will be padded. With padding and duplicate
words, the sparse embedding gradients would have repeated coordinates"*
— padding is therefore part of the mechanism, not an artifact.
"""

from __future__ import annotations

import numpy as np


def pad_batch(
    sentences: list[np.ndarray],
    pad_id: int,
    max_len: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack sentences into ``(batch, L)`` right-padded with ``pad_id``.

    Returns ``(ids, lengths)`` where ``lengths`` are the pre-padding
    sentence lengths (clipped to ``max_len`` when truncating).
    """
    if not sentences:
        raise ValueError("pad_batch requires at least one sentence")
    lengths = np.array([len(s) for s in sentences], dtype=np.int64)
    if (lengths == 0).any():
        raise ValueError("empty sentences cannot be padded")
    width = int(lengths.max())
    if max_len is not None:
        if max_len <= 0:
            raise ValueError(f"max_len must be positive, got {max_len}")
        width = min(width, max_len)
    out = np.full((len(sentences), width), pad_id, dtype=np.int64)
    for i, s in enumerate(sentences):
        n = min(len(s), width)
        out[i, :n] = s[:n]
        lengths[i] = n
    return out, lengths


def count_tokens(ids: np.ndarray, pad_id: int) -> int:
    """Non-padding token count — the paper's throughput unit (§5.2.2)."""
    return int((np.asarray(ids) != pad_id).sum())
