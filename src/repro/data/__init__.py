"""Synthetic NLP data with the statistics the paper's mechanisms exploit.

The real datasets (LM1B, WMT-16/14, SQuAD) are unavailable offline; what
EmbRace actually depends on is four statistical properties of batches:

1. a large vocabulary of which each batch touches a small subset
   (embedding-gradient *sparsity*, Fig. 4's x-axis),
2. Zipfian token frequency (duplicates inside a batch -> coalescing
   gains, Table 3 column 2; row-wise-partition imbalance, §4.1.1),
3. padding to rectangular batches (more duplicates of ``pad``),
4. overlap between consecutive batches' token sets (the prior/delayed
   split of Algorithm 1, Table 3 column 3).

:class:`ZipfSampler`, :class:`SyntheticCorpus` and the batch iterators
reproduce all four knobs, and :class:`Prefetcher` provides the
"data of the next iteration is already in memory" property §4.2.2 needs.
"""

from repro.data.vocab import Vocab
from repro.data.zipf import ZipfSampler
from repro.data.corpus import SyntheticCorpus, SyntheticPairCorpus
from repro.data.tokenizer import pad_batch
from repro.data.batching import (
    Batch,
    BatchIterator,
    DLRMBatchIterator,
    PairBatchIterator,
    TokenBudgetBatcher,
)
from repro.data.prefetch import Prefetcher
from repro.data.io import (
    FileCorpus,
    load_corpus,
    materialize_synthetic,
    pack_sentences,
    save_corpus,
    unpack_sentences,
)

__all__ = [
    "Vocab",
    "ZipfSampler",
    "SyntheticCorpus",
    "SyntheticPairCorpus",
    "pad_batch",
    "Batch",
    "BatchIterator",
    "DLRMBatchIterator",
    "PairBatchIterator",
    "TokenBudgetBatcher",
    "Prefetcher",
    "FileCorpus",
    "save_corpus",
    "load_corpus",
    "pack_sentences",
    "unpack_sentences",
    "materialize_synthetic",
]
