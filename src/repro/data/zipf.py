"""Truncated Zipf sampling over a fixed vocabulary.

Natural-language word frequencies follow a Zipf law; this is the property
that (a) creates duplicate tokens inside batches (coalescing gains,
Table 3), (b) creates batch-to-batch overlap concentrated on frequent
words (the prior/delayed split), and (c) makes *row-wise* embedding
partitioning load-imbalanced (§4.1.1's argument for column-wise).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class ZipfSampler:
    """Draw word *ranks* with ``P(rank=k) ∝ 1/(k+1)^s`` over ``n`` words.

    Uses an explicit normalized CDF + inverse-transform sampling so the
    support is exactly ``[0, n)`` (numpy's ``rng.zipf`` is unbounded).
    """

    def __init__(self, num_words: int, exponent: float = 1.1):
        check_positive("num_words", num_words)
        check_positive("exponent", exponent)
        self.num_words = int(num_words)
        self.exponent = float(exponent)
        ranks = np.arange(1, self.num_words + 1, dtype=np.float64)
        weights = ranks**-self.exponent
        self._set_probs(weights / weights.sum())

    def _set_probs(self, probs: np.ndarray) -> None:
        self._probs = probs
        self._cdf = np.cumsum(self._probs)
        # Guard against floating-point drift at the tail.
        self._cdf[-1] = 1.0

    @property
    def probs(self) -> np.ndarray:
        """Rank probabilities (read-only view)."""
        v = self._probs.view()
        v.flags.writeable = False
        return v

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> np.ndarray:
        """Sample word ranks with the Zipf law."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_distinct(self, n_draws: int) -> float:
        """Expected number of distinct ranks in ``n_draws`` samples.

        ``E[distinct] = Σ_k (1 - (1 - p_k)^n)`` — used to predict batch
        sparsity α analytically (Fig. 4 calibration).
        """
        check_positive("n_draws", n_draws)
        return float((1.0 - (1.0 - self._probs) ** n_draws).sum())


class ZipfMixtureSampler(ZipfSampler):
    """Two-tier vocabulary: a high-frequency head plus a flat content tail.

    Natural corpora combine a small closed class of function words
    (appearing in essentially every batch — high *cross-batch* overlap)
    with a long open-class tail (driving low *within-batch* duplication
    over large vocabularies).  A single Zipf law cannot hit the paper's
    Table 3 on both axes at once; this mixture gives the two knobs:

    * ``head_mass`` of the probability goes to the first ``head_size``
      ranks (Zipf with ``head_exponent`` inside the head),
    * the remaining mass spreads over the tail with ``tail_exponent``.
    """

    def __init__(
        self,
        num_words: int,
        head_size: int,
        head_mass: float,
        head_exponent: float = 1.0,
        tail_exponent: float = 0.6,
    ):
        check_positive("num_words", num_words)
        check_positive("head_size", head_size)
        if not 0.0 < head_mass < 1.0:
            raise ValueError(f"head_mass must be in (0, 1), got {head_mass}")
        if head_size >= num_words:
            raise ValueError(
                f"head_size {head_size} must be smaller than vocab {num_words}"
            )
        check_positive("head_exponent", head_exponent)
        check_positive("tail_exponent", tail_exponent)
        self.num_words = int(num_words)
        self.exponent = head_exponent
        self.head_size = int(head_size)
        self.head_mass = float(head_mass)

        head_ranks = np.arange(1, head_size + 1, dtype=np.float64)
        head = head_ranks**-head_exponent
        head *= head_mass / head.sum()
        tail_ranks = np.arange(1, num_words - head_size + 1, dtype=np.float64)
        tail = tail_ranks**-tail_exponent
        tail *= (1.0 - head_mass) / tail.sum()
        self._set_probs(np.concatenate([head, tail]))
