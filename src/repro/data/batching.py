"""Batch iterators: fixed batch size and Transformer-style token budgets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.corpus import SyntheticCorpus, SyntheticPairCorpus
from repro.data.tokenizer import count_tokens, pad_batch
from repro.utils.validation import check_positive


@dataclass
class Batch:
    """One training batch.

    ``inputs``/``targets`` are ``(batch, L)`` id arrays; for language
    modelling ``targets`` is ``inputs`` shifted left; for translation
    ``inputs`` is the source and ``targets`` the target sentence.
    ``token_ids`` is the union of ids the batch touches per embedding
    table — the quantity Algorithm 1 intersects between iterations.

    ``streams`` carries per-table raw id arrays for workloads whose
    tables are not derivable from ``inputs``/``targets`` (DLRM's many
    categorical tables), keyed by table name; the reserved
    ``"__dense__"`` key holds continuous input features.  When a table
    appears here, :func:`repro.schedule.vertical._table_ids` uses it
    instead of the NLP input/target convention.
    """

    inputs: np.ndarray
    targets: np.ndarray
    num_tokens: int
    token_ids: dict[str, np.ndarray] = field(default_factory=dict)
    streams: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def batch_size(self) -> int:
        return self.inputs.shape[0]


class BatchIterator:
    """Endless monolingual LM batches of fixed ``batch_size``."""

    def __init__(self, corpus: SyntheticCorpus, batch_size: int, max_len: int | None = None):
        check_positive("batch_size", batch_size)
        self.corpus = corpus
        self.batch_size = int(batch_size)
        self.max_len = max_len

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        pad = self.corpus.vocab.pad_id
        ids, _ = pad_batch(self.corpus.sentences(self.batch_size), pad, self.max_len)
        inputs = ids[:, :-1]
        targets = ids[:, 1:]
        return Batch(
            inputs=inputs,
            targets=targets,
            num_tokens=count_tokens(targets, pad),
            token_ids={"embedding": np.unique(inputs[inputs != pad])},
        )


class PairBatchIterator:
    """Endless translation batches of fixed ``batch_size``."""

    def __init__(
        self,
        corpus: SyntheticPairCorpus,
        batch_size: int,
        max_len: int | None = None,
    ):
        check_positive("batch_size", batch_size)
        self.corpus = corpus
        self.batch_size = int(batch_size)
        self.max_len = max_len

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        pairs = self.corpus.pairs(self.batch_size)
        src_pad = self.corpus.src.vocab.pad_id
        tgt_pad = self.corpus.tgt_vocab.pad_id
        src, _ = pad_batch([p[0] for p in pairs], src_pad, self.max_len)
        tgt, _ = pad_batch([p[1] for p in pairs], tgt_pad, self.max_len)
        return Batch(
            inputs=src,
            targets=tgt,
            num_tokens=count_tokens(tgt, tgt_pad),
            token_ids={
                "encoder_embedding": np.unique(src[src != src_pad]),
                "decoder_embedding": np.unique(tgt[tgt != tgt_pad]),
            },
        )


class DLRMBatchIterator:
    """Endless click-log batches for the DLRM config.

    Each sample draws ``src_seq_len`` Zipf-distributed categorical ids
    per table (the multi-hot degree; id 0 is reserved as padding, like
    the NLP vocabularies), plus dense features and a binary click label
    deterministically derived from the ids — so two ranks replaying the
    same seed see bit-identical batches.
    """

    def __init__(self, config, batch_size: int, seed: int = 0):
        from repro.data.zipf import ZipfSampler

        check_positive("batch_size", batch_size)
        self.config = config
        self.batch_size = int(batch_size)
        self.degree = int(config.src_seq_len)
        self.rng = np.random.default_rng(seed)
        self.samplers = {
            t.name: ZipfSampler(t.vocab_size - 1, exponent=config.zipf_exponent)
            for t in config.tables
        }

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        from repro.models.blocks import DLRM_DENSE_FEATURES

        streams: dict[str, np.ndarray] = {}
        token_ids: dict[str, np.ndarray] = {}
        acc = np.zeros(self.batch_size, dtype=np.int64)
        for t in self.config.tables:
            ids = 1 + self.samplers[t.name].sample(
                self.rng, (self.batch_size, self.degree)
            ).astype(np.int64)
            streams[t.name] = ids
            token_ids[t.name] = np.unique(ids)
            acc += ids.sum(axis=1)
        streams["__dense__"] = self.rng.standard_normal(
            (self.batch_size, DLRM_DENSE_FEATURES)
        )
        # Click labels are a fixed function of the drawn ids: learnable
        # structure without any stored dataset.
        targets = ((acc % 5) < 2).astype(np.int64).reshape(-1, 1)
        inputs = np.concatenate(
            [streams[t.name] for t in self.config.tables], axis=1
        )
        return Batch(
            inputs=inputs,
            targets=targets,
            num_tokens=self.batch_size,
            token_ids=token_ids,
            streams=streams,
        )


class TokenBudgetBatcher:
    """Variable batch size bounded by max tokens per batch (Transformer, §5.2.2)."""

    def __init__(self, corpus: SyntheticPairCorpus, max_tokens: int, max_len: int | None = None):
        check_positive("max_tokens", max_tokens)
        self.corpus = corpus
        self.max_tokens = int(max_tokens)
        self.max_len = max_len

    def __iter__(self):
        return self

    def __next__(self) -> Batch:
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        tokens = 0
        widest = 0
        while True:
            src, tgt = self.corpus.pair()
            widest_if = max(widest, len(src), len(tgt))
            # Padded footprint if we add this pair.
            if pairs and widest_if * (len(pairs) + 1) > self.max_tokens:
                break
            pairs.append((src, tgt))
            widest = widest_if
            tokens += len(tgt)
            if tokens >= self.max_tokens:
                break
        src_pad = self.corpus.src.vocab.pad_id
        tgt_pad = self.corpus.tgt_vocab.pad_id
        src, _ = pad_batch([p[0] for p in pairs], src_pad, self.max_len)
        tgt, _ = pad_batch([p[1] for p in pairs], tgt_pad, self.max_len)
        return Batch(
            inputs=src,
            targets=tgt,
            num_tokens=count_tokens(tgt, tgt_pad),
            token_ids={
                "encoder_embedding": np.unique(src[src != src_pad]),
                "decoder_embedding": np.unique(tgt[tgt != tgt_pad]),
            },
        )
