"""Dataset persistence: tokenized corpora on disk.

Synthetic corpora are cheap to regenerate, but persisted token streams
make runs byte-reproducible across machines and let users drop in real
tokenized data (any ``.npz`` with the same layout works).  The format is
one ``.npz`` per split holding a flat token array plus sentence offsets
— the standard packed layout for LM corpora.
"""

from __future__ import annotations

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.data.vocab import Vocab
from repro.utils.validation import check_positive


def pack_sentences(sentences: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten sentences into ``(tokens, offsets)``.

    ``offsets`` has ``len(sentences) + 1`` entries; sentence *i* is
    ``tokens[offsets[i]:offsets[i+1]]``.
    """
    if not sentences:
        raise ValueError("need at least one sentence")
    lengths = np.array([len(s) for s in sentences], dtype=np.int64)
    if (lengths == 0).any():
        raise ValueError("empty sentences cannot be packed")
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    tokens = np.concatenate(sentences).astype(np.int64)
    return tokens, offsets


def unpack_sentences(tokens: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`pack_sentences`."""
    tokens = np.asarray(tokens, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or len(offsets) < 2:
        raise ValueError("offsets must be 1-D with at least 2 entries")
    if offsets[0] != 0 or offsets[-1] != len(tokens):
        raise ValueError("offsets must start at 0 and end at len(tokens)")
    if (np.diff(offsets) <= 0).any():
        raise ValueError("offsets must be strictly increasing")
    return [tokens[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]


def save_corpus(
    path: str, sentences: list[np.ndarray], vocab_size: int
) -> None:
    """Persist sentences (+ vocab size for validation on reload)."""
    check_positive("vocab_size", vocab_size)
    tokens, offsets = pack_sentences(sentences)
    if tokens.size and tokens.max() >= vocab_size:
        raise ValueError(
            f"token id {tokens.max()} exceeds vocab size {vocab_size}"
        )
    np.savez_compressed(
        path,
        tokens=tokens,
        offsets=offsets,
        vocab_size=np.array(vocab_size, dtype=np.int64),
    )


def load_corpus(path: str) -> tuple[list[np.ndarray], int]:
    """Load sentences saved by :func:`save_corpus`; returns (sentences, vocab)."""
    with np.load(path) as archive:
        sentences = unpack_sentences(archive["tokens"], archive["offsets"])
        return sentences, int(archive["vocab_size"])


class FileCorpus:
    """A corpus replaying persisted sentences (cycling at the end).

    Drop-in for :class:`~repro.data.SyntheticCorpus` wherever only
    ``sentence()`` / ``sentences()`` / ``vocab`` are used.
    """

    def __init__(self, path: str):
        self._sentences, vocab_size = load_corpus(path)
        self.vocab = Vocab(vocab_size)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._sentences)

    def sentence(self) -> np.ndarray:
        s = self._sentences[self._cursor % len(self._sentences)]
        self._cursor += 1
        return s

    def sentences(self, n: int) -> list[np.ndarray]:
        check_positive("n", n)
        return [self.sentence() for _ in range(n)]


def materialize_synthetic(
    path: str, corpus: SyntheticCorpus, n_sentences: int
) -> None:
    """Generate ``n_sentences`` from a synthetic corpus and persist them."""
    check_positive("n_sentences", n_sentences)
    save_corpus(path, corpus.sentences(n_sentences), corpus.vocab.size)
