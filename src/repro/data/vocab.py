"""Vocabulary with the special tokens the tokenizer relies on."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Vocab:
    """An integer-id vocabulary: ``[pad, bos, eos, unk, words...]``.

    ``size`` counts every id including specials; word ids occupy
    ``[num_special, size)``.
    """

    size: int
    pad_id: int = 0
    bos_id: int = 1
    eos_id: int = 2
    unk_id: int = 3

    NUM_SPECIAL = 4

    def __post_init__(self) -> None:
        if self.size <= self.NUM_SPECIAL:
            raise ValueError(
                f"vocab size must exceed {self.NUM_SPECIAL} specials, got {self.size}"
            )
        ids = {self.pad_id, self.bos_id, self.eos_id, self.unk_id}
        if len(ids) != 4 or max(ids) >= self.NUM_SPECIAL:
            raise ValueError("special ids must be distinct and < NUM_SPECIAL")

    @property
    def num_words(self) -> int:
        """Number of non-special word ids."""
        return self.size - self.NUM_SPECIAL

    def word_id(self, rank: int) -> int:
        """Id of the ``rank``-th most frequent word (0-based)."""
        if not 0 <= rank < self.num_words:
            raise ValueError(f"word rank {rank} out of range [0, {self.num_words})")
        return self.NUM_SPECIAL + rank
