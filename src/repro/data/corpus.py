"""Synthetic sentence corpora (monolingual and paired translation)."""

from __future__ import annotations

import numpy as np

from repro.data.vocab import Vocab
from repro.data.zipf import ZipfMixtureSampler, ZipfSampler
from repro.utils.validation import check_positive


def make_sampler(
    num_words: int,
    zipf_exponent: float,
    head_size: int | None = None,
    head_mass: float = 0.4,
) -> ZipfSampler:
    """Plain Zipf sampler, or a head/tail mixture when ``head_size`` is set."""
    if head_size is None:
        return ZipfSampler(num_words, zipf_exponent)
    return ZipfMixtureSampler(
        num_words, head_size=head_size, head_mass=head_mass,
        tail_exponent=zipf_exponent,
    )


class SyntheticCorpus:
    """A stream of variable-length sentences over a Zipfian vocabulary.

    Sentence lengths are drawn uniformly from ``[min_len, max_len]``;
    each sentence is ``bos + words + eos``.

    ``recurrence`` models *temporal locality*: real corpora are read in
    document order, so consecutive batches share topical vocabulary far
    beyond what i.i.d. unigram sampling produces.  With probability
    ``recurrence`` a word is redrawn uniformly from the most recent
    ``buffer_size`` emitted words instead of from the Zipf law — this is
    the knob behind the paper's Table 3 "prioritized" column (the
    current/next batch intersection of Algorithm 1).
    """

    def __init__(
        self,
        vocab: Vocab,
        min_len: int = 8,
        max_len: int = 32,
        zipf_exponent: float = 1.1,
        seed: int = 0,
        head_size: int | None = None,
        head_mass: float = 0.4,
        recurrence: float = 0.0,
        buffer_size: int = 8192,
    ):
        if not 0 < min_len <= max_len:
            raise ValueError(f"need 0 < min_len <= max_len, got ({min_len}, {max_len})")
        if not 0.0 <= recurrence < 1.0:
            raise ValueError(f"recurrence must be in [0, 1), got {recurrence}")
        check_positive("buffer_size", buffer_size)
        self.vocab = vocab
        self.min_len = min_len
        self.max_len = max_len
        self.sampler = make_sampler(vocab.num_words, zipf_exponent, head_size, head_mass)
        self.rng = np.random.default_rng(seed)
        self.recurrence = recurrence
        self.buffer_size = int(buffer_size)
        self._recent = np.empty(0, dtype=np.int64)
        self._recent_unique = np.empty(0, dtype=np.int64)
        self._pending = 0

    def _remember(self, words: np.ndarray) -> None:
        if self.recurrence == 0.0:
            return
        self._recent = np.concatenate([self._recent, words])[-self.buffer_size :]
        self._pending += len(words)
        # Draws reuse the *distinct* recent vocabulary so recurrence raises
        # cross-batch overlap without re-duplicating within a batch.  The
        # unique set is refreshed lazily (every ~1/8 buffer turnover):
        # computing it per sentence would dominate generation time.
        if self._pending >= max(64, self.buffer_size // 8):
            self._recent_unique = np.unique(self._recent)
            self._pending = 0

    def sentence(self) -> np.ndarray:
        """One sentence of token ids, including bos/eos."""
        n = int(self.rng.integers(self.min_len, self.max_len + 1))
        ranks = self.sampler.sample(self.rng, n)
        words = (ranks + Vocab.NUM_SPECIAL).astype(np.int64)
        if self.recurrence > 0.0 and len(self._recent_unique):
            reuse = self.rng.random(n) < self.recurrence
            if reuse.any():
                words[reuse] = self.rng.choice(
                    self._recent_unique, size=int(reuse.sum())
                )
        self._remember(words)
        return np.concatenate(
            [[self.vocab.bos_id], words, [self.vocab.eos_id]]
        ).astype(np.int64)

    def sentences(self, n: int) -> list[np.ndarray]:
        check_positive("n", n)
        return [self.sentence() for _ in range(n)]


class SyntheticPairCorpus:
    """Source/target sentence pairs for translation workloads.

    Target sentences reuse a fraction of the source's word ranks
    (translationese correlation) so that encoder/decoder embedding access
    patterns are realistically coupled.
    """

    def __init__(
        self,
        src_vocab: Vocab,
        tgt_vocab: Vocab,
        min_len: int = 8,
        max_len: int = 32,
        zipf_exponent: float = 1.1,
        length_ratio: float = 1.1,
        seed: int = 0,
        head_size: int | None = None,
        head_mass: float = 0.4,
        recurrence: float = 0.0,
        buffer_size: int = 8192,
    ):
        check_positive("length_ratio", length_ratio)
        self.src = SyntheticCorpus(
            src_vocab, min_len, max_len, zipf_exponent, seed,
            head_size=head_size, head_mass=head_mass,
            recurrence=recurrence, buffer_size=buffer_size,
        )
        # The target side is its own corpus stream with the same locality.
        self._tgt = SyntheticCorpus(
            tgt_vocab, min_len, max_len, zipf_exponent, seed + 1,
            head_size=head_size, head_mass=head_mass,
            recurrence=recurrence, buffer_size=buffer_size,
        )
        self.tgt_vocab = tgt_vocab
        self.tgt_sampler = self._tgt.sampler
        self.length_ratio = length_ratio
        self.rng = np.random.default_rng(seed + 1)

    def pair(self) -> tuple[np.ndarray, np.ndarray]:
        src = self.src.sentence()
        n_src = len(src) - 2  # exclude bos/eos
        n_tgt = max(1, int(round(n_src * self.length_ratio)))
        saved = self._tgt.min_len, self._tgt.max_len
        self._tgt.min_len = self._tgt.max_len = n_tgt
        tgt = self._tgt.sentence()
        self._tgt.min_len, self._tgt.max_len = saved
        return src, tgt

    def pairs(self, n: int) -> list[tuple[np.ndarray, np.ndarray]]:
        check_positive("n", n)
        return [self.pair() for _ in range(n)]
