"""Adagrad (Duchi et al., 2011) — fully element-wise, split-update safe."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer
from repro.tensors import SparseRows


class Adagrad(Optimizer):
    """Per-element accumulated squared gradients.

    Because both the accumulator and the update touch only the elements a
    gradient covers, applying disjoint sparse parts sequentially is exactly
    equivalent to applying their sum — the property EmbRace relies on for
    sparse optimizers (§5.7).
    """

    def __init__(self, params: list[Parameter], lr: float = 0.01, eps: float = 1e-10):
        super().__init__(params, lr)
        self.eps = eps

    def _init_state(self, param: Parameter) -> dict:
        return {"sum_sq": np.zeros_like(param.data)}

    def _update_dense(self, param: Parameter, grad: np.ndarray) -> None:
        st = self.state_for(param)
        st["sum_sq"] += grad**2
        param.data -= self.lr * grad / (np.sqrt(st["sum_sq"]) + self.eps)

    def _update_sparse(self, param: Parameter, grad: SparseRows) -> None:
        st = self.state_for(param)
        rows, vals = grad.indices, grad.values
        st["sum_sq"][rows] += vals**2
        param.data[rows] -= self.lr * vals / (np.sqrt(st["sum_sq"][rows]) + self.eps)
