"""Stochastic gradient descent (optionally with momentum on dense params)."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer
from repro.tensors import SparseRows
from repro.utils.validation import check_non_negative


class SGD(Optimizer):
    """Plain SGD; momentum applies to dense parameters only.

    The sparse path is momentum-free and purely element-wise, hence
    split-update safe (paper §5.7: "the common sparse optimizer such as
    Adagrad and SGD is fully element-wise").
    """

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        check_non_negative("momentum", momentum)
        self.momentum = momentum

    def _init_state(self, param: Parameter) -> dict:
        if self.momentum and not param.sparse_grad:
            return {"velocity": np.zeros_like(param.data)}
        return {}

    def _update_dense(self, param: Parameter, grad: np.ndarray) -> None:
        if self.momentum:
            st = self.state_for(param)
            st["velocity"] = self.momentum * st["velocity"] + grad
            param.data -= self.lr * st["velocity"]
        else:
            param.data -= self.lr * grad

    def _update_sparse(self, param: Parameter, grad: SparseRows) -> None:
        grad.add_to(param.data, scale=-self.lr)
