"""Gradient clipping, aware of row-sparse gradients."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.parameter import Parameter
from repro.tensors import SparseRows
from repro.utils.validation import check_positive


def global_grad_norm(params: list[Parameter]) -> float:
    """L2 norm over every accumulated gradient (dense and sparse)."""
    total = 0.0
    for p in params:
        if p.grad is None:
            continue
        if isinstance(p.grad, SparseRows):
            total += float((p.grad.coalesce().values ** 2).sum())
        else:
            total += float((np.asarray(p.grad) ** 2).sum())
    return math.sqrt(total)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so the global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (PyTorch convention).  Sparse gradients
    are scaled in place on their value rows; element-wise scaling keeps
    the EmbRace split-update equivalence intact (both parts see the same
    factor when clipping happens before the split).
    """
    check_positive("max_norm", max_norm)
    norm = global_grad_norm(params)
    if norm <= max_norm or norm == 0.0:
        return norm
    scale = max_norm / norm
    for p in params:
        if p.grad is None:
            continue
        if isinstance(p.grad, SparseRows):
            p.grad = p.grad.scale(scale)
        else:
            p.grad = p.grad * scale
    return norm
