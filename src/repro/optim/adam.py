"""Adam (Kingma & Ba, 2014) with a SparseAdam-style row path.

The sparse path mirrors ``torch.optim.SparseAdam``: only the rows present
in the (coalesced) gradient have their first/second-moment rows advanced
and their parameters updated.  The bias-correction exponent is the
per-parameter scalar ``step`` — the state that makes naive two-part
application non-equivalent (see :class:`repro.optim.EmbraceAdam`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.base import Optimizer
from repro.tensors import SparseRows
from repro.utils.validation import check_probability


class Adam(Optimizer):
    """Standard Adam for dense parameters; SparseAdam for sparse ones."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        """``weight_decay`` applies AdamW-style decoupled decay to *dense*
        parameters only (sparse embedding rows are conventionally left
        undecayed, and decaying untouched rows would also break the
        touched-rows-only contract of SparseAdam)."""
        super().__init__(params, lr)
        check_probability("beta1", betas[0])
        check_probability("beta2", betas[1])
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _init_state(self, param: Parameter) -> dict:
        return {
            "step": 0,
            "exp_avg": np.zeros_like(param.data),
            "exp_avg_sq": np.zeros_like(param.data),
        }

    # ------------------------------------------------------------------ #
    def _update_dense(self, param: Parameter, grad: np.ndarray) -> None:
        st = self.state_for(param)
        st["step"] += 1
        st["exp_avg"] = self.beta1 * st["exp_avg"] + (1 - self.beta1) * grad
        st["exp_avg_sq"] = self.beta2 * st["exp_avg_sq"] + (1 - self.beta2) * grad**2
        bc1 = 1 - self.beta1 ** st["step"]
        bc2 = 1 - self.beta2 ** st["step"]
        denom = np.sqrt(st["exp_avg_sq"] / bc2) + self.eps
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        param.data -= self.lr * (st["exp_avg"] / bc1) / denom

    # ------------------------------------------------------------------ #
    def _apply_sparse_rows(
        self, param: Parameter, grad: SparseRows, step_for_bias: int
    ) -> None:
        """Row-wise Adam update using ``step_for_bias`` as the correction step."""
        st = self.state_for(param)
        rows, vals = grad.indices, grad.values
        if len(rows) == 0:
            return
        m = st["exp_avg"][rows] * self.beta1 + (1 - self.beta1) * vals
        v = st["exp_avg_sq"][rows] * self.beta2 + (1 - self.beta2) * vals**2
        st["exp_avg"][rows] = m
        st["exp_avg_sq"][rows] = v
        bc1 = 1 - self.beta1**step_for_bias
        bc2 = 1 - self.beta2**step_for_bias
        denom = np.sqrt(v / bc2) + self.eps
        param.data[rows] -= self.lr * (m / bc1) / denom

    def _update_sparse(self, param: Parameter, grad: SparseRows) -> None:
        st = self.state_for(param)
        st["step"] += 1
        self._apply_sparse_rows(param, grad, st["step"])
