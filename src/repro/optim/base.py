"""Optimizer base class."""

from __future__ import annotations

from repro.nn.parameter import Parameter
from repro.tensors import SparseRows
from repro.utils.validation import check_positive


class Optimizer:
    """Holds parameters and per-parameter state; applies gradients.

    Subclasses implement ``_update_dense(param, grad)`` and
    ``_update_sparse(param, grad)`` (``grad`` coalesced).  ``step()``
    applies whatever gradients are currently accumulated and leaves them
    in place (call ``zero_grad`` between iterations, as in PyTorch).
    """

    def __init__(self, params: list[Parameter], lr: float):
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        check_positive("lr", lr)
        self.params = list(params)
        self.lr = lr
        self.state: dict[int, dict] = {}

    def state_for(self, param: Parameter) -> dict:
        key = id(param)
        if key not in self.state:
            self.state[key] = self._init_state(param)
        return self.state[key]

    def _init_state(self, param: Parameter) -> dict:
        return {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply every accumulated gradient once."""
        for p in self.params:
            if p.grad is None:
                continue
            if p.sparse_grad:
                grad = p.grad
                if not isinstance(grad, SparseRows):
                    raise TypeError(
                        f"{p.name}: sparse parameter has {type(grad).__name__} grad"
                    )
                self._update_sparse(p, grad.coalesce())
            else:
                self._update_dense(p, p.grad)

    def _update_dense(self, param: Parameter, grad) -> None:  # pragma: no cover
        raise NotImplementedError

    def _update_sparse(self, param: Parameter, grad: SparseRows) -> None:  # pragma: no cover
        raise NotImplementedError
