"""Optimizers with dense and row-sparse update paths.

``Adagrad`` and ``SGD`` are fully element-wise, so (as the paper notes in
§5.7) splitting a sparse gradient into prior/delayed parts and applying
them sequentially is automatically equivalent to one fused update.
``Adam`` is *not*: its scalar ``step`` state advances on every call, so a
two-part application would bias-correct the two parts differently.
:class:`EmbraceAdam` implements the paper's fix — the ``step`` state is
incremented only when the **delayed** part is applied.
"""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adagrad import Adagrad
from repro.optim.adam import Adam
from repro.optim.embrace_adam import EmbraceAdam
from repro.optim.clip import clip_grad_norm, global_grad_norm

__all__ = [
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
    "EmbraceAdam",
    "clip_grad_norm",
    "global_grad_norm",
]
