"""Learning-rate schedules used by the benchmark models' recipes.

The paper trains with the models' standard recipes (GNMT/Transformer use
warmup + decay).  Schedules mutate ``optimizer.lr`` in place via
``step()`` — call once per training iteration.
"""

from __future__ import annotations

import math

from repro.optim.base import Optimizer
from repro.utils.validation import check_positive


class LRSchedule:
    """Base schedule: subclasses implement ``lr_at(step)``."""

    def __init__(self, optimizer: Optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        check_positive("base_lr", self.base_lr)
        self.step_count = 0

    def lr_at(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one iteration; returns (and applies) the new LR."""
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    """No decay (the LM recipe at tiny scale)."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupInverseSqrt(LRSchedule):
    """The Transformer recipe (Vaswani et al. eq. 3).

    ``lr = base * min(step^-0.5, step * warmup^-1.5) * warmup^0.5`` —
    linear warmup to ``base`` at ``warmup_steps``, then inverse-sqrt decay.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int = 4000,
                 base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        check_positive("warmup_steps", warmup_steps)
        self.warmup_steps = int(warmup_steps)

    def lr_at(self, step: int) -> float:
        scale = min(step**-0.5, step * self.warmup_steps**-1.5)
        return self.base_lr * scale * self.warmup_steps**0.5


class ExponentialDecay(LRSchedule):
    """GNMT-style stepwise exponential decay after a flat phase."""

    def __init__(self, optimizer: Optimizer, decay_rate: float = 0.5,
                 decay_every: int = 1000, flat_steps: int = 0,
                 base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        if not 0 < decay_rate <= 1:
            raise ValueError(f"decay_rate must be in (0, 1], got {decay_rate}")
        check_positive("decay_every", decay_every)
        self.decay_rate = decay_rate
        self.decay_every = int(decay_every)
        self.flat_steps = int(flat_steps)

    def lr_at(self, step: int) -> float:
        if step <= self.flat_steps:
            return self.base_lr
        decays = (step - self.flat_steps) // self.decay_every
        return self.base_lr * self.decay_rate**decays


class CosineDecay(LRSchedule):
    """Cosine annealing to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 0.0, base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        check_positive("total_steps", total_steps)
        if min_lr < 0:
            raise ValueError(f"min_lr must be >= 0, got {min_lr}")
        self.total_steps = int(total_steps)
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        progress = min(1.0, step / self.total_steps)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * progress)
        )
