"""The paper's modified Adam for two-part (prior/delayed) sparse updates.

§5.7: *"Most parts of Adam are element-wise except the state parameter
step ... Therefore, we modify the Adam optimizer in PyTorch, updating the
step state only at applying the delayed sparse gradients to embedding
parameters. This modification ensures synchronous training and the rate
of convergence."*

:meth:`EmbraceAdam.apply_sparse_part` applies one part of a split sparse
gradient.  Both parts are bias-corrected with the *same* step value
(``step + 1``); the counter is committed only when ``final=True``.  With
disjoint row sets (guaranteed by Algorithm 1's intersection/difference
split of a coalesced gradient), the two-part application is bit-identical
to a single fused update — property-tested in ``tests/test_optim.py``.
"""

from __future__ import annotations

from repro.nn.parameter import Parameter
from repro.optim.adam import Adam
from repro.tensors import SparseRows


class EmbraceAdam(Adam):
    """Adam whose sparse ``step`` state advances once per iteration,
    regardless of how many gradient parts the iteration applies."""

    def apply_sparse_part(
        self, param: Parameter, grad: SparseRows, final: bool
    ) -> None:
        """Apply one part of this iteration's sparse gradient.

        Parameters
        ----------
        param:
            A sparse-gradient parameter registered with this optimizer.
        grad:
            One part of the split gradient.  Parts within an iteration
            must cover disjoint row sets (Algorithm 1 guarantees this).
        final:
            ``True`` for the last part (the delayed gradients) — commits
            the step counter.
        """
        if not param.sparse_grad:
            raise ValueError(f"{param.name}: apply_sparse_part requires a sparse parameter")
        st = self.state_for(param)
        self._apply_sparse_rows(param, grad.coalesce(), st["step"] + 1)
        if final:
            st["step"] += 1
