"""Command-line interface: ``repro <subcommand>`` or ``python -m repro``.

Subcommands
-----------
``experiment``  run one (or all) paper tables/figures and print findings
``simulate``    one-cell throughput/stall simulation
``train``       real multi-worker training at tiny scale
``faults``      fault-injection degradation curves / crash-recovery demo
``trace``       export a simulated step timeline as a Chrome trace
``tune``        probe this host, fit alpha-beta, auto-tune the schedule
``scale``       hybrid mode: real two-level twins + 64..1024 replay ladder
``serve``       serve sharded-embedding lookups during online training
``scenarios``   models x strategies x pipeline schedules in one matrix
``sizes``       print Table 1 (model/embedding sizes)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.harness import (
        ALL_EXPERIMENTS,
        EXTENDED_EXPERIMENTS,
        render_markdown,
    )

    available = {**ALL_EXPERIMENTS, **EXTENDED_EXPERIMENTS}
    if args.name == "all":
        runners = available
    elif args.name in available:
        runners = {args.name: available[args.name]}
    else:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(available)} or 'all'", file=sys.stderr)
        return 2
    results = []
    for name, runner in runners.items():
        print(f"running {name}...", file=sys.stderr)
        results.append(runner())
    text = render_markdown(results)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.engine.trainer_sim import simulate_training
    from repro.models import get_config
    from repro.strategies import ALL_STRATEGIES

    result = simulate_training(
        get_config(args.model), args.gpu, args.world, ALL_STRATEGIES[args.strategy]()
    )
    print(f"model      : {result.model}")
    print(f"cluster    : {args.world} x {args.gpu}")
    print(f"strategy   : {result.strategy}")
    print(f"step time  : {result.step_time * 1e3:.2f} ms")
    print(f"stall      : {result.computation_stall * 1e3:.2f} ms")
    print(f"throughput : {result.tokens_per_sec:,.0f} tokens/s")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.engine.trainer_real import RealTrainer
    from repro.eval import perplexity_curve
    from repro.models import get_config

    config = get_config(args.model).tiny()
    result = RealTrainer(
        config, strategy=args.strategy, world_size=args.world,
        steps=args.steps, lr=args.lr, seed=args.seed,
    ).train()
    ppl = perplexity_curve(result.losses, smooth=3)
    for i, (loss, p) in enumerate(zip(result.losses, ppl)):
        print(f"step {i:3d}  loss {loss:.4f}  ppl {p:.2f}")
    print(f"comm bytes (rank 0): {result.comm_bytes:,}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.mode == "curves":
        from repro.experiments.faults import run_faults

        print(run_faults().render())
        return 0

    # mode == "crash": inject a rank crash and recover from checkpoint.
    import tempfile

    from repro.engine.trainer_real import RealTrainer
    from repro.faults import FaultPlan
    from repro.models import get_config

    if not 0 <= args.crash_step < args.steps:
        print(f"--crash-step must be in [0, {args.steps}), got {args.crash_step}",
              file=sys.stderr)
        return 2
    if not 0 <= args.crash_rank < args.world:
        print(f"--crash-rank must be in [0, {args.world}), got {args.crash_rank}",
              file=sys.stderr)
        return 2
    config = get_config(args.model).tiny()
    kwargs = dict(strategy=args.strategy, world_size=args.world,
                  steps=args.steps, seed=args.seed)
    plan = FaultPlan(seed=args.seed, recv_deadline=5.0,
                     crashes={args.crash_rank: args.crash_step})
    resilient = RealTrainer(
        config, fault_plan=plan, checkpoint_every=args.checkpoint_every,
        checkpoint_dir=tempfile.mkdtemp(prefix="repro-faults-"), **kwargs,
    ).train_resilient()
    clean = RealTrainer(config, **kwargs).train()
    rep = resilient.report
    print(f"attempts       : {rep.attempts}")
    print(f"crash events   : {rep.crash_events}")
    print(f"restore steps  : {rep.restore_steps}")
    print(f"steps replayed : {rep.steps_replayed}")
    print(f"recovery wall  : {rep.recovery_wall_s:.2f}s")
    print(f"final loss     : {resilient.result.losses[-1]:.6f}")
    print(f"uninterrupted  : {clean.losses[-1]:.6f}  "
          f"(bit-equal curve: {resilient.result.losses == clean.losses})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.models import get_config
    from repro.sim.trace_export import write_chrome_trace

    if args.real:
        from repro.engine.run import RunConfig, run, real_strategy

        try:
            real_strategy(args.strategy)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        result = run(RunConfig(
            model=get_config(args.model).tiny(),
            mode="real",
            strategy=args.strategy,
            world_size=args.world,
            steps=args.steps,
            backend=args.backend,
            trace=True,
        ))
        counters = result.raw.trace.total_counters()
        write_chrome_trace(
            result.trace, args.output,
            process_name=f"{args.model}-{result.strategy}-real",
            counters=counters,
        )
        print(f"wrote {args.output} ({len(result.trace.entries)} events, "
              f"{result.world_size} ranks, wall {result.wall_time * 1e3:.2f} ms, "
              f"stall {result.computation_stall() * 1e3:.2f} ms); "
              "open in chrome://tracing or https://ui.perfetto.dev")
        return 0

    from repro.engine.step_simulator import simulate_step
    from repro.engine.trainer_sim import make_context
    from repro.strategies import ALL_STRATEGIES

    if args.world not in (4, 8, 16):
        print("simulated traces use the paper's cluster sizes: "
              "--world must be 4, 8, or 16", file=sys.stderr)
        return 2
    ctx = make_context(get_config(args.model), args.gpu, args.world)
    report = simulate_step(ALL_STRATEGIES[args.strategy](), ctx)
    write_chrome_trace(report.trace, args.output,
                       process_name=f"{args.model}-{args.strategy}")
    print(f"wrote {args.output} ({len(report.trace.entries)} events, "
          f"makespan {report.step_time * 1e3:.2f} ms); open in chrome://tracing")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.models import get_config
    from repro.tune import (
        DEFAULT_PROBE_ITERS,
        PROBE_SIZES_BYTES,
        SMOKE_SIZES_BYTES,
        SearchSpace,
        autotune,
    )

    if args.smoke:
        # CI pipeline exercise: thread backend, tiny probes, <= 4-candidate
        # grid, short runs — every stage of probe -> fit -> search ->
        # validate runs, in seconds.
        backend, transport = "thread", None
        world = min(args.world, 2)
        steps = min(args.steps, 3)
        sizes, iters = SMOKE_SIZES_BYTES, 3
        space, rungs, top_k = SearchSpace.smoke(), (2,), 1
    else:
        backend, transport = args.backend, args.transport
        world, steps = args.world, args.steps
        sizes, iters = PROBE_SIZES_BYTES, DEFAULT_PROBE_ITERS
        space, rungs, top_k = SearchSpace(), (2, 4), args.top_k
    if backend == "thread":
        transport = None
    report = autotune(
        get_config(args.model).tiny(),
        world_size=world,
        backend=backend,
        transport=transport,
        steps=steps,
        seed=args.seed,
        space=space,
        probe_sizes=sizes,
        probe_iters=iters,
        rungs=rungs,
        top_k=top_k,
    )
    print(report.render())
    w = report.winner
    print(f"\nwinner: {w.candidate.label()}  "
          f"(measured stall {w.measured_stall_frac:.4f} vs default "
          f"{report.default.measured_stall_frac:.4f}; "
          f"step-time prediction error {w.step_time_error:.1%})")
    if args.output:
        report.tuned_profile.save(args.output)
        print(f"wrote {args.output}")
    if not report.losses_identical:
        print("ERROR: loss curves diverged across knob settings",
              file=sys.stderr)
        return 1
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.engine.hybrid import run_hybrid, scale_bench_model
    from repro.engine.run import RunConfig
    from repro.models import get_config
    from repro.tune import (
        DEFAULT_PROBE_ITERS,
        PROBE_SIZES_BYTES,
        SMOKE_SIZES_BYTES,
    )

    if args.smoke:
        # CI pipeline exercise: thread backend, 2 simulated nodes x 2
        # ranks, tiny probes, a short ladder — real twins, per-level
        # fit and replay all run in a couple of seconds.
        model = scale_bench_model()
        world, steps, backend, transport = 4, 2, "thread", None
        sim_world: tuple[int, ...] | int | None = (16, 64)
        sizes, iters = SMOKE_SIZES_BYTES, 3
    else:
        model = (
            scale_bench_model()
            if args.model == "scalebench"
            else get_config(args.model).tiny()
        )
        world, steps = args.world, args.steps
        backend = args.backend
        transport = None if backend == "thread" else args.transport
        sim_world = args.max_world
        sizes, iters = PROBE_SIZES_BYTES, DEFAULT_PROBE_ITERS
    res = run_hybrid(
        RunConfig(
            model=model,
            mode="hybrid",
            world_size=world,
            steps=steps,
            seed=args.seed,
            backend=backend,
            transport=transport,
            sim_world=sim_world,
        ),
        probe_sizes_bytes=sizes,
        probe_iters=iters,
    )
    report = res.raw
    m = res.metrics
    print(
        f"real twins ({world} ranks, nodes="
        f"{[list(n) for n in report.topology.nodes]}): losses bit-identical"
        f" = {report.losses_identical}, inter-node bytes "
        f"{m['real_inter_bytes_hier']:.0f} hier / "
        f"{m['real_inter_bytes_flat']:.0f} flat "
        f"(ratio {m['real_inter_ratio']:.3f}), node dedup "
        f"{m['node_dedup']:.3f}"
    )
    pp = report.profile_point
    print(
        f"profile point (world {pp.world_size}): hierarchical exchange "
        f"moves {pp.exchange_ratio:.3f}x the flat cross-node bytes"
    )
    print(f"\n{'world':>7} {'nodes':>6} {'flat ms':>9} {'hier ms':>9} "
          f"{'speedup':>8} {'xratio':>7}")
    for p in report.curve:
        print(
            f"{p.world_size:>7} {p.num_nodes:>6} "
            f"{p.step_time_flat_s * 1e3:>9.2f} "
            f"{p.step_time_hier_s * 1e3:>9.2f} "
            f"{p.speedup:>8.3f} {p.exchange_ratio:>7.3f}"
        )
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    if not report.losses_identical:
        print("ERROR: hierarchical collectives diverged from the flat "
              "loss curve", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serve import ServeConfig, ShardedEmbeddingService, offline_reference

    if args.smoke:
        # CI pipeline exercise: thread backend, two ranks, a short Zipfian
        # burst over one online-training window — admission, versioned
        # reads, commit overlap and the offline bit-identity check all
        # run in a couple of seconds.
        cfg = ServeConfig(
            world_size=2,
            backend="thread",
            clients=2,
            requests_per_client=20,
            train_steps=8,
            seed=args.seed,
        )
    else:
        cfg = ServeConfig(
            world_size=args.world,
            backend=args.backend,
            transport=None if args.backend == "thread" else args.transport,
            clients=args.clients,
            requests_per_client=args.requests,
            ids_per_request=args.ids_per_request,
            zipf_exponent=args.zipf_exponent,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            train_steps=args.steps,
            train_batch=args.train_batch,
            seed=args.seed,
            trace=args.trace,
        )
    with ShardedEmbeddingService(cfg) as service:
        report = service.run()
    print(report.summary())
    offline_losses, offline_final, _ = offline_reference(cfg)
    identical = offline_losses == report.losses and all(
        np.array_equal(offline_final[name], report.final_tables[name])
        for name in cfg.tables
    )
    print(f"online == offline (bit-identical): {identical}")
    if report.trace is not None:
        serve_busy = report.trace.busy_time("serve", 0)
        print(f"serve lane busy (rank 0): {serve_busy * 1e3:.2f} ms")
    if not identical or report.torn_batches:
        print("ERROR: serving perturbed training or tore a read",
              file=sys.stderr)
        return 1
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioSpec, run_matrix

    if args.smoke:
        spec = ScenarioSpec.smoke()
    else:
        spec = ScenarioSpec(
            models=tuple(args.models),
            strategies=tuple(args.strategies),
            schedules=tuple(args.schedules),
            world_size=args.world,
            gpu_kind=args.gpu,
            n_stages=args.stages,
            n_microbatches=args.microbatches,
            validate_real=not args.no_real,
            real_world_size=args.real_world,
        )
    report = run_matrix(spec, log=lambda m: print(m, file=sys.stderr))
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"\nwrote {args.json}")
    if any(not r.identical for r in report.real_checks):
        print("ERROR: a real-backend run was not bit-identical with the "
              "scheduler off", file=sys.stderr)
        return 1
    return 0


def _cmd_sizes(args: argparse.Namespace) -> int:
    from repro.models.sizing import sizing_table

    print(sizing_table().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.strategies import ALL_STRATEGIES

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", help="run paper experiments")
    p.add_argument("name", help="experiment id (table1..fig11) or 'all'")
    p.add_argument("-o", "--output", help="write markdown to this file")
    p.set_defaults(func=_cmd_experiment)

    models = ["LM", "GNMT-8", "Transformer", "BERT-base"]
    p = sub.add_parser("simulate", help="simulate one throughput cell")
    p.add_argument("--model", default="GNMT-8", choices=models)
    p.add_argument("--gpu", default="rtx3090", choices=("rtx3090", "rtx2080"))
    p.add_argument("--world", type=int, default=16, choices=(4, 8, 16))
    p.add_argument("--strategy", default="EmbRace", choices=sorted(ALL_STRATEGIES))
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("train", help="real multi-worker training (tiny scale)")
    p.add_argument("--model", default="GNMT-8", choices=models)
    p.add_argument("--strategy", default="embrace", choices=("embrace", "allgather"))
    p.add_argument("--world", type=int, default=2)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--lr", type=float, default=5e-3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "faults", help="fault-injection study (degradation curves / crash demo)"
    )
    p.add_argument("--mode", default="curves", choices=("curves", "crash"))
    p.add_argument("--model", default="GNMT-8", choices=models)
    p.add_argument("--strategy", default="allgather",
                   choices=("embrace", "allgather"))
    p.add_argument("--world", type=int, default=2)
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--crash-rank", type=int, default=1)
    p.add_argument("--crash-step", type=int, default=4)
    p.add_argument("--checkpoint-every", type=int, default=2)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser("trace", help="export a step timeline (Chrome trace)")
    p.add_argument("--model", default="GNMT-8", choices=models)
    p.add_argument("--gpu", default="rtx3090", choices=("rtx3090", "rtx2080"))
    p.add_argument("--world", type=int, default=16)
    p.add_argument("--strategy", default="EmbRace", choices=sorted(ALL_STRATEGIES))
    p.add_argument("-o", "--output", default="step_trace.json")
    p.add_argument("--real", action="store_true",
                   help="trace a real tiny-scale training run instead of "
                        "the simulator (per-rank span recording)")
    p.add_argument("--backend", default="thread", choices=("thread", "process"),
                   help="worker backend for --real")
    p.add_argument("--steps", type=int, default=3,
                   help="training steps for --real")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "tune",
        help="probe this host, fit alpha-beta links, auto-tune SchedKnobs",
    )
    p.add_argument("--model", default="GNMT-8", choices=models)
    p.add_argument("--world", type=int, default=4)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--backend", default="process", choices=("thread", "process"))
    p.add_argument("--transport", default="shm", choices=("shm", "queue"))
    p.add_argument("--top-k", type=int, default=2,
                   help="candidates replayed on the real backend")
    p.add_argument("-o", "--output", default=None,
                   help="write the winning TunedProfile JSON here")
    p.add_argument("--smoke", action="store_true",
                   help="CI pipeline check: thread backend, tiny probes, "
                        "<= 4 candidates")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "scale",
        help="hybrid mode: real two-level twins, per-level alpha-beta "
             "fit, 64..1024-rank replay ladder",
    )
    p.add_argument("--model", default="scalebench",
                   choices=["scalebench"] + models,
                   help="'scalebench' = the sparse-dominated GNMT "
                        "derivative BENCH_scale uses; paper models run "
                        "their tiny() config")
    p.add_argument("--world", type=int, default=4,
                   help="real ranks for the twin runs (split into 2 "
                        "simulated nodes)")
    p.add_argument("--steps", type=int, default=3)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--backend", default="process", choices=("thread", "process"))
    p.add_argument("--transport", default="shm", choices=("shm", "queue"))
    p.add_argument("--max-world", type=int, default=None,
                   help="top rung of the replay ladder (doubling from "
                        "64); default: the 64..1024 ladder")
    p.add_argument("--json", default=None,
                   help="write the full HybridReport JSON here")
    p.add_argument("--smoke", action="store_true",
                   help="CI pipeline check: thread backend, tiny probes, "
                        "short ladder")
    p.set_defaults(func=_cmd_scale)

    p = sub.add_parser(
        "serve",
        help="serve sharded-embedding lookups concurrently with online "
             "training (repro.serve)",
    )
    p.add_argument("--world", type=int, default=2)
    p.add_argument("--backend", default="thread", choices=("thread", "process"))
    p.add_argument("--transport", default="shm", choices=("shm", "queue"))
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop lookup clients")
    p.add_argument("--requests", type=int, default=100,
                   help="requests per client")
    p.add_argument("--ids-per-request", type=int, default=16)
    p.add_argument("--zipf-exponent", type=float, default=1.1)
    p.add_argument("--max-batch", type=int, default=8,
                   help="admission: release a batch at this size")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="admission: or when its oldest request is this old")
    p.add_argument("--steps", type=int, default=20,
                   help="online training steps")
    p.add_argument("--train-batch", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true",
                   help="record spans (serve lane vs train lanes)")
    p.add_argument("--smoke", action="store_true",
                   help="CI pipeline check: thread backend, tiny run")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "scenarios",
        help="sweep models x strategies x pipeline schedules in one matrix",
    )
    p.add_argument("--smoke", action="store_true",
                   help="small CI matrix (3 models x 3 strategies x 3 schedules)")
    p.add_argument("--models", nargs="+",
                   default=["LM", "GNMT-8", "Transformer", "BERT-base", "DLRM"],
                   choices=[*models, "DLRM"])
    p.add_argument("--strategies", nargs="+",
                   default=["EmbRace", "Horovod-AllReduce", "Horovod-AllGather",
                            "BytePS", "Parallax"])
    p.add_argument("--schedules", nargs="+",
                   default=["data_parallel", "gpipe", "1f1b", "nested"],
                   choices=("data_parallel", "gpipe", "1f1b", "nested"))
    p.add_argument("--gpu", default="rtx3090", choices=("rtx3090", "rtx2080"))
    p.add_argument("--world", type=int, default=8)
    p.add_argument("--stages", type=int, default=4)
    p.add_argument("--microbatches", type=int, default=4)
    p.add_argument("--no-real", action="store_true",
                   help="skip the real-backend bit-identity validation")
    p.add_argument("--real-world", type=int, default=4)
    p.add_argument("--json", help="also write the report as JSON here")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("sizes", help="print Table 1")
    p.set_defaults(func=_cmd_sizes)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
