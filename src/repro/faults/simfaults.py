"""Fault injection for the simulator path.

The same :class:`~repro.faults.plan.FaultPlan` that drives the real
backend perturbs the discrete-event simulator:

* straggler factors become per-rank ``compute_skew`` of
  :func:`repro.sim.multirank.expand_to_ranks`;
* wire faults (delay tail, drops-with-retransmit, reorder holdback)
  become sampled duration penalties on the shared ``network`` collective
  tasks, mirroring what the sender-side injector of
  :mod:`repro.faults.inject` costs the real path — one latency model,
  two executions.

Crashes are a trainer-level fault (a step never completes) and have no
single-step simulator analogue; they are ignored here.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.faults.plan import FaultPlan
from repro.sim.executor import execute
from repro.sim.multirank import NETWORK, expand_to_ranks
from repro.sim.task import Task, TaskGraph


def apply_duration_hook(
    graph: TaskGraph, hook: Callable[[Task], float]
) -> TaskGraph:
    """Copy ``graph`` with every task's duration replaced by ``hook(task)``.

    Names, resources, kinds, priorities and dependencies are preserved,
    so the result executes on the same schedule with perturbed timing —
    the generic injection point for *any* simulated step graph.
    """
    out = TaskGraph()
    for task in graph.tasks.values():
        out.add(
            Task(
                name=task.name,
                duration=hook(task),
                resource=task.resource,
                kind=task.kind,
                priority=task.priority,
                deps=task.deps,
                meta=dict(task.meta),
            )
        )
    return out


def message_fault_penalty(
    plan: FaultPlan, rng: np.random.Generator, n_messages: int
) -> float:
    """Sampled extra seconds ``n_messages`` transmissions pay under ``plan``.

    Mirrors the sender-side injector: each message may draw an
    exponential delay tail, a reorder holdback, and a geometric number
    of retransmissions each costing its backoff sleep (capped by the
    retry policy, as on the real path).
    """
    extra = 0.0
    for _ in range(n_messages):
        if plan.delay_prob and rng.random() < plan.delay_prob:
            extra += rng.exponential(plan.delay_s) if plan.delay_s else 0.0
        if plan.reorder_prob and rng.random() < plan.reorder_prob:
            extra += plan.reorder_s
        attempt = 0
        while plan.drop_prob and rng.random() < plan.drop_prob:
            if attempt >= plan.retry.max_retries:
                break
            extra += plan.retry.backoff(attempt)
            attempt += 1
    return extra


def expand_with_faults(
    graph: TaskGraph, world_size: int, plan: FaultPlan
) -> TaskGraph:
    """Multi-rank expansion of a symmetric step graph under ``plan``.

    Equivalent to :func:`expand_to_ranks` with the plan's straggler skew
    when no wire faults are armed; otherwise every ``network`` collective
    additionally pays a seeded :func:`message_fault_penalty` for its
    ``world_size`` per-rank message legs.
    """
    expanded = expand_to_ranks(
        graph, world_size, compute_skew=plan.compute_skew(world_size)
    )
    if not plan.perturbs_messages:
        return expanded
    rng = plan.rng_for(None)

    def hook(task: Task) -> float:
        if task.resource != NETWORK:
            return task.duration
        return task.duration + message_fault_penalty(plan, rng, world_size)

    return apply_duration_hook(expanded, hook)


def degraded_step_time(
    graph: TaskGraph, world_size: int, plan: FaultPlan
) -> float:
    """Makespan of one step of ``graph`` at ``world_size`` ranks under
    ``plan`` — the simulator half of a degradation curve."""
    return execute(expand_with_faults(graph, world_size, plan)).makespan
