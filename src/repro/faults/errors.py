"""Typed failure hierarchy of the fault-injection subsystem.

Every permanent communication failure surfaces as a :class:`CommFailure`
subclass instead of a bare ``TimeoutError`` or a silent hang, so callers
(most importantly :meth:`repro.engine.trainer_real.RealTrainer.
train_resilient`) can distinguish "a peer is gone, recover from the last
checkpoint" from programming errors.
"""

from __future__ import annotations


class CommFailure(RuntimeError):
    """A communication operation failed permanently.

    ``rank`` is the rank that observed the failure; ``op`` names the
    operation (e.g. ``"recv(src=2)"``).  Transient faults are retried
    inside the injection layer and never surface as this type.
    """

    def __init__(self, message: str, rank: int | None = None, op: str | None = None):
        super().__init__(message)
        self.rank = rank
        self.op = op


class PeerTimeout(CommFailure):
    """A receive exceeded its deadline — the peer is dead or deadlocked."""


class MessageLost(CommFailure):
    """Every retransmission attempt of one message was dropped."""


class BarrierBroken(CommFailure):
    """A barrier was aborted or timed out (some rank never arrived)."""


class RankCrashed(CommFailure):
    """An injected rank crash (``FaultPlan.crashes``) fired.

    ``step`` records the global training step at which the crash was
    scheduled, which the recovery driver uses to disarm the fault.
    """

    def __init__(self, message: str, rank: int | None = None, step: int | None = None):
        super().__init__(message, rank=rank, op="crash")
        self.step = step
