"""Declarative fault plans.

A :class:`FaultPlan` describes *what goes wrong* during a training run —
per-rank compute stragglers, message delay/drop/reorder on the wire,
rank crashes at a given step — independently of *where* it is executed.
The same (seeded, deterministic) plan drives:

* the real backend, via :class:`~repro.faults.inject.FaultyCommunicator`
  wrapping any :class:`~repro.comm.Communicator`;
* the simulator, via :func:`~repro.faults.simfaults.expand_with_faults`
  perturbing task durations of the multi-rank graph.

This is what lets sim-vs-real degradation curves be cross-validated:
one plan, two execution paths.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.utils.validation import check_non_negative, check_positive, check_probability


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible failure scenario.

    Parameters
    ----------
    seed:
        Root of every RNG decision (per-rank streams are derived, so the
        plan is deterministic at any world size).
    stragglers:
        ``rank -> slowdown factor``; factor 2.0 makes that rank's compute
        take twice as long (real path: sleeps; sim path: duration skew).
    delay_prob / delay_s:
        Each message is delayed with probability ``delay_prob`` by an
        Exponential(``delay_s``) extra latency — the tail-latency model.
    drop_prob:
        Each transmission *attempt* is dropped with this probability;
        the sender retransmits under ``retry`` until the policy is
        exhausted (then the message is permanently lost).
    reorder_prob / reorder_s:
        A random subset of messages is held back ``reorder_s`` seconds,
        overtaking later traffic; sequence numbers restore order at the
        receiver, at a waiting cost.
    crashes:
        ``rank -> global step``: the rank raises
        :class:`~repro.faults.errors.RankCrashed` at the top of that
        step (once — the recovery driver disarms fired crashes).
    recv_deadline:
        Deadline (seconds) for every blocking receive/barrier on the
        real backend; past it a typed
        :class:`~repro.faults.errors.PeerTimeout` is raised, never a
        hang.
    retry:
        Backoff policy for retransmitting dropped messages.
    """

    seed: int = 0
    stragglers: dict[int, float] = field(default_factory=dict)
    delay_prob: float = 0.0
    delay_s: float = 0.0
    drop_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_s: float = 0.0
    crashes: dict[int, int] = field(default_factory=dict)
    recv_deadline: float = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        check_probability("delay_prob", self.delay_prob)
        check_probability("drop_prob", self.drop_prob)
        check_probability("reorder_prob", self.reorder_prob)
        check_non_negative("delay_s", self.delay_s)
        check_non_negative("reorder_s", self.reorder_s)
        check_positive("recv_deadline", self.recv_deadline)
        for rank, factor in self.stragglers.items():
            if rank < 0:
                raise ValueError(f"straggler rank must be >= 0, got {rank}")
            check_positive(f"straggler factor of rank {rank}", factor)
        for rank, step in self.crashes.items():
            if rank < 0:
                raise ValueError(f"crash rank must be >= 0, got {rank}")
            check_non_negative(f"crash step of rank {rank}", step)

    # -- queries --------------------------------------------------------- #
    @property
    def perturbs_messages(self) -> bool:
        """Whether any wire-level fault (delay/drop/reorder) is armed."""
        return bool(self.delay_prob or self.drop_prob or self.reorder_prob)

    @property
    def is_benign(self) -> bool:
        return not (self.perturbs_messages or self.stragglers or self.crashes)

    def straggler_factor(self, rank: int) -> float:
        return self.stragglers.get(rank, 1.0)

    def compute_skew(self, world_size: int) -> list[float]:
        """Per-rank duration multipliers for the simulator path."""
        return [self.straggler_factor(r) for r in range(world_size)]

    def should_crash(self, rank: int, step: int) -> bool:
        return self.crashes.get(rank) == step

    def without_crashes_at_or_before(self, step: int) -> "FaultPlan":
        """Disarm crashes scheduled at or before ``step`` (they fired)."""
        kept = {r: s for r, s in self.crashes.items() if s > step}
        return replace(self, crashes=kept)

    def rng_for(self, rank: int | None = None) -> np.random.Generator:
        """An independent deterministic stream per rank (or the shared
        simulator stream when ``rank`` is ``None``).

        The shared stream's spawn key is a word no rank can hold
        (``default_rng([s])`` and ``default_rng([s, 0])`` would collide
        otherwise — SeedSequence zero-pads its entropy).
        """
        key = 2**32 - 1 if rank is None else rank
        return np.random.default_rng([self.seed, key])

    # -- (de)serialization ----------------------------------------------- #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        data = dict(data)
        if "retry" in data and isinstance(data["retry"], dict):
            data["retry"] = RetryPolicy(**data["retry"])
        # JSON turns int keys into strings; normalize back.
        for key in ("stragglers", "crashes"):
            if key in data:
                caster = float if key == "stragglers" else int
                data[key] = {int(r): caster(v) for r, v in data[key].items()}
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())
