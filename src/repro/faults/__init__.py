"""Fault injection & resilience (``repro.faults``).

The paper's synchronous collectives run at the speed of the slowest
rank; production systems treat stragglers, delayed messages, and rank
failures as first-class concerns.  This package makes failure scenarios
*executable* on both of the repository's paths:

* :class:`FaultPlan` — a declarative, seeded, serializable description
  of what goes wrong (stragglers, message delay/drop/reorder, crashes);
* :class:`FaultyCommunicator` — injects the plan into the real backend
  (retransmit-with-backoff survives transient faults; permanent ones
  raise typed :class:`CommFailure` subclasses instead of hanging);
* :func:`expand_with_faults` / :func:`degraded_step_time` — injects the
  same plan into the discrete-event simulator;
* :meth:`repro.engine.trainer_real.RealTrainer.train_resilient` — on a
  :class:`CommFailure`, restores from the latest checkpoint and resumes.
"""

from repro.faults.errors import (
    BarrierBroken,
    CommFailure,
    MessageLost,
    PeerTimeout,
    RankCrashed,
)
from repro.faults.inject import (
    FaultyCommunicator,
    InjectionStats,
    run_multiprocess_with_faults,
    run_threaded_with_faults,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, retry_with_backoff
from repro.faults.simfaults import (
    apply_duration_hook,
    degraded_step_time,
    expand_with_faults,
    message_fault_penalty,
)

__all__ = [
    "BarrierBroken",
    "CommFailure",
    "FaultPlan",
    "FaultyCommunicator",
    "InjectionStats",
    "MessageLost",
    "PeerTimeout",
    "RankCrashed",
    "RetryPolicy",
    "apply_duration_hook",
    "degraded_step_time",
    "expand_with_faults",
    "message_fault_penalty",
    "retry_with_backoff",
    "run_multiprocess_with_faults",
    "run_threaded_with_faults",
]
