"""Retry with exponential backoff.

The transport layer of :class:`~repro.faults.inject.FaultyCommunicator`
retransmits dropped messages under a :class:`RetryPolicy`; the same
policy shapes the retransmission penalty the simulator charges to
collectives (:mod:`repro.faults.simfaults`), so the two execution paths
degrade under one model.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from repro.utils.validation import check_non_negative, check_positive

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: attempt ``k`` (0-based) sleeps
    ``min(base_backoff * factor**k, max_backoff)`` before retrying; after
    ``max_retries`` failed retries the operation fails permanently."""

    max_retries: int = 4
    base_backoff: float = 0.01
    factor: float = 2.0
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("max_retries", self.max_retries)
        check_non_negative("base_backoff", self.base_backoff)
        check_positive("factor", self.factor)
        check_positive("max_backoff", self.max_backoff)

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        check_non_negative("attempt", attempt)
        return min(self.base_backoff * self.factor**attempt, self.max_backoff)

    def total_budget(self) -> float:
        """Total seconds of backoff a fully exhausted retry loop sleeps."""
        return sum(self.backoff(a) for a in range(self.max_retries))


def retry_with_backoff(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (OSError, TimeoutError),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Only exceptions listed in ``retryable`` are retried; the last one is
    re-raised once ``policy.max_retries`` retries have been consumed.
    ``on_retry(attempt, exc)`` is invoked before each backoff sleep.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retryable as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.backoff(attempt))
            attempt += 1
