"""Fault injection over the real communication backend.

:class:`FaultyCommunicator` wraps any :class:`~repro.comm.Communicator`
(thread- or process-backed) and perturbs its primitive surface according
to a :class:`~repro.faults.plan.FaultPlan`:

* **drop** — a transmission attempt is discarded; the sender
  retransmits with exponential backoff (transient faults are survived
  invisibly) and raises a typed
  :class:`~repro.faults.errors.MessageLost` once the policy is
  exhausted (permanent faults never hang);
* **delay / reorder** — messages are handed to the link by a timer
  thread after an injected latency, so later traffic can overtake them;
  per-link sequence numbers and a receiver-side reorder buffer restore
  delivery order at a waiting cost, exactly like a reliable transport
  over an unreliable network;
* **straggler** — :meth:`FaultyCommunicator.straggler` stretches the
  wrapped compute block by the rank's slowdown factor;
* **crash** — :meth:`FaultyCommunicator.check_crash` raises
  :class:`~repro.faults.errors.RankCrashed` at the planned step.

All ranks of a group must wrap (or none): the envelope format is a
transport-level protocol.  Collectives need no changes — they are
implemented against ``send``/``recv``/``barrier`` and inherit the
injected behaviour, which is the point: EmbRace's AlltoAll schedule and
the baselines degrade under identical wire conditions.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.comm.backend import Communicator
from repro.comm.local import run_threaded
from repro.faults.errors import BarrierBroken, MessageLost, PeerTimeout, RankCrashed
from repro.faults.plan import FaultPlan
from repro.faults.retry import retry_with_backoff


class _TransientSendFault(Exception):
    """Internal: one transmission attempt was dropped (retryable)."""


@dataclass
class InjectionStats:
    """What the injector actually did on one rank (for reports/tests)."""

    sent: int = 0
    delayed: int = 0
    reordered: int = 0
    retransmits: int = 0
    lost: int = 0
    crash_fired: bool = False
    straggle_s: float = 0.0

    def as_dict(self) -> dict:
        return dict(
            sent=self.sent,
            delayed=self.delayed,
            reordered=self.reordered,
            retransmits=self.retransmits,
            lost=self.lost,
            crash_fired=self.crash_fired,
            straggle_s=self.straggle_s,
        )


@dataclass
class _ReorderBuffer:
    """Receiver side of the sequenced link from one peer."""

    expected: int = 0
    stash: dict[int, Any] = field(default_factory=dict)


class FaultyCommunicator(Communicator):
    """A :class:`Communicator` with plan-driven faults injected."""

    #: Drops hold the payload for retransmission and delays hand it to a
    #: timer thread, so the injector can never promise synchronous byte
    #: capture — collectives must snapshot views before sending even when
    #: the wrapped transport could take them zero-copy.
    SEND_SNAPSHOTS = False

    def __init__(
        self,
        inner: Communicator,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ):
        super().__init__(inner.rank, inner.world_size)
        self._inner = inner
        self.plan = plan
        self._sleep = sleep
        self._rng = plan.rng_for(inner.rank)
        self._send_seq = [0] * inner.world_size
        self._reorder = [_ReorderBuffer() for _ in range(inner.world_size)]
        self._timers: list[threading.Timer] = []
        self.stats = InjectionStats()

    # -- sender side ----------------------------------------------------- #
    def _sample_extra_latency(self) -> float:
        plan, extra = self.plan, 0.0
        if plan.delay_prob and self._rng.random() < plan.delay_prob:
            extra += self._rng.exponential(plan.delay_s) if plan.delay_s else 0.0
            self.stats.delayed += 1
        if plan.reorder_prob and self._rng.random() < plan.reorder_prob:
            extra += plan.reorder_s
            self.stats.reordered += 1
        return extra

    def _transmit(self, dst: int, envelope: tuple[int, Any]) -> None:
        """One transmission attempt: may be dropped, may be delayed."""
        if self.plan.drop_prob and self._rng.random() < self.plan.drop_prob:
            raise _TransientSendFault(dst)
        extra = self._sample_extra_latency()
        if extra > 0.0:
            timer = threading.Timer(extra, self._inner._send, args=(dst, envelope))
            timer.daemon = True
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)
            timer.start()
        else:
            self._inner._send(dst, envelope)

    def drain(self) -> None:
        """Block until every delayed (timer-thread) send has been handed
        to the wrapped transport.

        Call when this rank's work is done but peers may still be
        waiting: a worker that exits with a send still pending tears
        down its transport under the message (on the shared-memory
        backend the segment pool closes and the late send is dropped),
        turning an injected delay into an injected loss.
        """
        for timer in self._timers:
            timer.join()
        self._timers.clear()

    def _send(self, dst: int, obj: Any) -> None:
        envelope = (self._send_seq[dst], obj)
        self._send_seq[dst] += 1
        self.stats.sent += 1

        def _count_retry(attempt: int, exc: BaseException) -> None:
            self.stats.retransmits += 1
            self.obs.count("faults.retransmits_live")

        try:
            retry_with_backoff(
                lambda: self._transmit(dst, envelope),
                self.plan.retry,
                retryable=(_TransientSendFault,),
                sleep=self._sleep,
                on_retry=_count_retry,
            )
        except _TransientSendFault:
            self.stats.lost += 1
            raise MessageLost(
                f"rank {self.rank}: message #{envelope[0]} to rank {dst} lost "
                f"after {self.plan.retry.max_retries} retransmissions",
                rank=self.rank,
                op=f"send(dst={dst})",
            ) from None

    # -- receiver side --------------------------------------------------- #
    def _recv(self, src: int) -> Any:
        buf = self._reorder[src]
        while buf.expected not in buf.stash:
            try:
                seq, payload = self._inner._recv(src)
            except TimeoutError as exc:
                raise PeerTimeout(
                    str(exc), rank=self.rank, op=f"recv(src={src})"
                ) from exc
            buf.stash[seq] = payload
        value = buf.stash.pop(buf.expected)
        buf.expected += 1
        return value

    def barrier(self) -> None:
        try:
            self._inner.barrier()
        except threading.BrokenBarrierError as exc:
            raise BarrierBroken(
                f"rank {self.rank}: barrier broken (a peer crashed or timed out)",
                rank=self.rank,
                op="barrier",
            ) from exc

    # -- compute-side faults --------------------------------------------- #
    def check_crash(self, step: int) -> None:
        """Raise :class:`RankCrashed` if the plan schedules one here."""
        if self.plan.should_crash(self.rank, step):
            self.stats.crash_fired = True
            raise RankCrashed(
                f"rank {self.rank}: injected crash at step {step}",
                rank=self.rank,
                step=step,
            )

    @contextmanager
    def straggler(self):
        """Stretch the wrapped block by this rank's straggler factor.

        Measures the block's own wall time and sleeps the difference, so
        a factor of 2.0 makes the block take (approximately) twice as
        long regardless of what it computes.
        """
        factor = self.plan.straggler_factor(self.rank)
        start = time.perf_counter()
        yield
        if factor > 1.0:
            penalty = (factor - 1.0) * (time.perf_counter() - start)
            self.stats.straggle_s += penalty
            obs = self.obs
            if not obs.enabled:
                self._sleep(penalty)
                return
            # The stretch occupies the compute lane without doing model
            # work — kind "overhead" so computation_stall() counts it.
            t0 = obs.t()
            self._sleep(penalty)
            obs.rec("straggle", "compute", "overhead", t0)


def run_threaded_with_faults(
    world_size: int,
    fn: Callable[[FaultyCommunicator], Any],
    plan: FaultPlan,
    *args,
    timeout: float | None = None,
    **kwargs,
) -> list[Any]:
    """:func:`repro.comm.run_threaded` with every rank's communicator
    wrapped in a :class:`FaultyCommunicator` driven by ``plan``.

    The group timeout defaults to ``plan.recv_deadline`` so dead peers
    surface as typed :class:`PeerTimeout` errors within the deadline.
    """

    def wrapped(comm: Communicator, *a, **k):
        faulty = FaultyCommunicator(comm, plan)
        try:
            return fn(faulty, *a, **k)
        finally:
            faulty.drain()

    return run_threaded(
        world_size,
        wrapped,
        *args,
        timeout=plan.recv_deadline if timeout is None else timeout,
        **kwargs,
    )


def run_multiprocess_with_faults(
    world_size: int,
    fn: Callable[[FaultyCommunicator], Any],
    plan: FaultPlan,
    *args,
    transport: str = "shm",
    **kwargs,
) -> list[Any]:
    """Process-backend twin of :func:`run_threaded_with_faults`.

    ``transport`` selects the wire path (``"shm"`` zero-copy segments or
    the legacy ``"queue"`` pickle path); the injector wraps the
    ``_send``/``_recv`` surface either way, so drops, retransmissions,
    and reordering behave identically on both.
    """
    from repro.comm.process import run_multiprocess

    return run_multiprocess(
        world_size,
        _FaultyEntrypoint(fn, plan),
        *args,
        timeout=plan.recv_deadline,
        transport=transport,
        **kwargs,
    )


class _FaultyEntrypoint:
    """Picklable wrapper installing the injector in each worker process."""

    def __init__(self, fn: Callable, plan: FaultPlan):
        self.fn = fn
        self.plan = plan

    def __call__(self, comm: Communicator, *args, **kwargs):
        faulty = FaultyCommunicator(comm, self.plan)
        try:
            return self.fn(faulty, *args, **kwargs)
        finally:
            # Deliver in-flight delayed sends before the worker reports
            # and tears down its transport — peers may still be reading.
            faulty.drain()
