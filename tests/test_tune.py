"""repro.tune: alpha-beta fitting, knob search, validation plumbing."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.comm import SchedKnobs, open_group
from repro.engine.run import RunConfig, run
from repro.engine.trainer_real import RealTrainer
from repro.models.config import GNMT8
from repro.tune import (
    Candidate,
    LinkFit,
    ProbeSample,
    SearchSpace,
    TunedProfile,
    calibrate_overhead,
    default_candidate,
    fit_alpha_beta,
    link_fit_from_samples,
    predict_candidate,
    probe_link,
    rank_candidates,
)
from repro.tune.search import MeasuredWorkload, TableLoad, _pack_buckets


def synthetic_samples(world, beta, bandwidth, sizes, noise=0.0, seed=0):
    """Exact ring-AllReduce times for known alpha-beta, plus optional noise."""
    rng = np.random.default_rng(seed)
    steps = 2 * (world - 1)
    out = []
    for s in sizes:
        t = steps * (s / (world * bandwidth) + beta)
        out.append(ProbeSample(s, t * (1.0 + noise * rng.standard_normal())))
    return out


SIZES = (16_384, 65_536, 262_144, 1_048_576, 4_194_304)


class TestFit:
    def test_known_alpha_beta_recovered_exactly(self):
        fit = link_fit_from_samples(
            "shm", 4, synthetic_samples(4, 40e-6, 2.5e9, SIZES)
        )
        assert fit.latency_s == pytest.approx(40e-6, rel=1e-9)
        assert fit.bandwidth_Bps == pytest.approx(2.5e9, rel=1e-9)
        assert fit.residual < 1e-9

    @pytest.mark.parametrize("world", [2, 3, 8])
    def test_recovery_within_5pct_under_noise(self, world):
        samples = synthetic_samples(
            world, 25e-6, 1.8e9, SIZES, noise=0.01, seed=3
        )
        fit = link_fit_from_samples("shm", world, samples)
        assert fit.latency_s == pytest.approx(25e-6, rel=0.05)
        assert fit.bandwidth_Bps == pytest.approx(1.8e9, rel=0.05)

    def test_predict_allreduce_roundtrip(self):
        fit = link_fit_from_samples(
            "shm", 4, synthetic_samples(4, 40e-6, 2.5e9, SIZES)
        )
        s = 524_288
        expected = 2 * 3 * (s / (4 * 2.5e9) + 40e-6)
        assert fit.predict_allreduce_s(s) == pytest.approx(expected, rel=1e-9)

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(ValueError, match="distinct"):
            fit_alpha_beta([ProbeSample(4096, 1e-3), ProbeSample(4096, 2e-3)])

    def test_rejects_non_finite_and_non_positive(self):
        with pytest.raises(ValueError):
            fit_alpha_beta([ProbeSample(4096, float("nan")),
                            ProbeSample(65536, 1e-3)])
        with pytest.raises(ValueError):
            fit_alpha_beta([ProbeSample(4096, -1e-3),
                            ProbeSample(65536, 1e-3)])

    def test_rejects_non_positive_slope(self):
        # Bigger message measured *faster*: no valid bandwidth exists.
        with pytest.raises(ValueError, match="degenerate"):
            fit_alpha_beta([ProbeSample(4096, 2e-3), ProbeSample(65536, 1e-3)])

    def test_negative_intercept_clamped(self):
        a, b = fit_alpha_beta(
            [ProbeSample(65_536, 1e-4), ProbeSample(1_048_576, 2e-3)]
        )
        assert a >= 0 and b > 0

    def test_probe_link_thread_backend(self):
        fit = probe_link(
            2, backend="thread", transport=None,
            sizes_bytes=(4_096, 65_536, 262_144), iters=3,
        )
        assert fit.transport == "thread"
        assert fit.bandwidth_Bps > 0 and fit.latency_s >= 0
        assert math.isfinite(fit.residual)
        assert len(fit.samples) == 3

    def test_probe_needs_two_ranks(self):
        with pytest.raises(ValueError, match="world_size"):
            probe_link(1, backend="thread")


def make_profile(world=4, beta=40e-6, bandwidth=2.5e9, transport="shm", **kw):
    fit = link_fit_from_samples(
        transport, world, synthetic_samples(world, beta, bandwidth, SIZES)
    )
    return TunedProfile(
        world_size=world, backend="process", links={transport: fit}, **kw
    )


class TestTunedProfile:
    def test_json_roundtrip(self):
        p = make_profile(
            knobs=SchedKnobs(chunk_elems=1024), strategy="embrace",
            transport="shm", meta={"host": "ci"},
        )
        p2 = TunedProfile.from_json(p.to_json())
        assert p2 == p

    def test_save_load(self, tmp_path):
        p = make_profile()
        path = str(tmp_path / "profile.json")
        p.save(path)
        assert TunedProfile.load(path) == p

    def test_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="JSON"):
            TunedProfile.from_json("{not json")

    def test_rejects_wrong_version(self):
        d = json.loads(make_profile().to_json())
        d["version"] = 99
        with pytest.raises(ValueError, match="version"):
            TunedProfile.from_json(json.dumps(d))

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            TunedProfile.from_json(json.dumps({"version": 1}))

    @pytest.mark.parametrize("field,value", [
        ("latency_s", float("nan")),
        ("latency_s", -1e-6),
        ("bandwidth_Bps", 0.0),
        ("bandwidth_Bps", float("inf")),
    ])
    def test_rejects_bad_link_numbers(self, field, value):
        d = json.loads(make_profile().to_json())
        d["links"]["shm"][field] = value
        with pytest.raises(ValueError):
            TunedProfile.from_json(json.dumps(d))

    def test_rejects_malformed_knobs(self):
        d = json.loads(make_profile().to_json())
        d["knobs"] = {"chunk_elems": -5}
        with pytest.raises(ValueError):
            TunedProfile.from_json(json.dumps(d))
        d["knobs"] = {"no_such_knob": 1}
        with pytest.raises(ValueError, match="unknown"):
            TunedProfile.from_json(json.dumps(d))

    def test_needs_a_link(self):
        with pytest.raises(ValueError, match="link"):
            TunedProfile(world_size=4, backend="process", links={})

    def test_link_selection(self):
        p = make_profile(transport="shm")
        assert p.link().transport == "shm"  # only link: no key needed
        assert p.link("shm").transport == "shm"
        with pytest.raises(KeyError):
            p.link("queue")

    def test_to_cluster_and_cost_model(self):
        p = make_profile(world=4, beta=40e-6, bandwidth=2.5e9)
        cluster = p.to_cluster()
        assert cluster.world_size == 4
        assert cluster.latency() == pytest.approx(40e-6)
        cost = p.cost_model()
        # Calibrated model must invert the fit: pricing an allreduce
        # with the fitted constants reproduces the probe timing model.
        s = 1_048_576
        assert cost.allreduce(s).seconds == pytest.approx(
            p.link().predict_allreduce_s(s), rel=1e-9
        )


class TestSchedKnobs:
    def test_defaults_match_historical_constants(self):
        from repro.comm.sched import DEFAULT_CHUNK_ELEMS, DEFAULT_MAX_CHUNKS

        k = SchedKnobs()
        assert k.chunk_elems == DEFAULT_CHUNK_ELEMS == 65536
        assert k.max_chunks == DEFAULT_MAX_CHUNKS == 8
        assert k.bucket_elems == 65536
        assert k.delayed_min_rows == 0

    @pytest.mark.parametrize("kw", [
        {"chunk_elems": 0},
        {"chunk_elems": -1},
        {"chunk_elems": 2.5},
        {"max_chunks": 0},
        {"bucket_elems": 0},
        {"delayed_min_rows": -1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SchedKnobs(**kw)

    def test_dict_roundtrip(self):
        k = SchedKnobs(chunk_elems=1024, delayed_min_rows=7)
        assert SchedKnobs.from_dict(k.to_dict()) == k
        with pytest.raises(ValueError, match="unknown"):
            SchedKnobs.from_dict({"bogus": 1})

    def test_trainer_rejects_bad_knobs_type(self):
        with pytest.raises(TypeError):
            RealTrainer(GNMT8.tiny(), knobs="fast please")


class TestSearchSpace:
    def test_grid_is_deterministic_product(self):
        space = SearchSpace(
            chunk_elems=(1024, 4096), max_chunks=(2,), bucket_elems=(8192,)
        )
        cands = space.candidates()
        assert [c.knobs.chunk_elems for c in cands] == [1024, 4096]
        assert cands == space.candidates()

    def test_smoke_grid_small(self):
        assert len(SearchSpace.smoke().candidates()) <= 4

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SearchSpace(chunk_elems=())

    def test_invalid_knob_value_rejected_at_expansion(self):
        with pytest.raises(ValueError):
            SearchSpace(chunk_elems=(0,)).candidates()


def make_workload(world=4):
    return MeasuredWorkload(
        world_size=world,
        fwd_bwd_s=5e-3,
        optimizer_s=1e-3,
        dense_param_sizes=((0.0, 40_000), (1.0, 120_000), (2.0, 50_000)),
        tables=(
            TableLoad(
                name="embedding", prior_bytes=80_000.0, delayed_bytes=40_000.0,
                coalesced_bytes=120_000.0, dense_bytes=4_000_000.0,
                delayed_rows=100.0, ids_bytes=2_400.0, lookup_bytes=150_000.0,
            ),
        ),
        measured_step_s=9e-3,
        measured_stall_frac=0.5,
    )


class TestSearch:
    def test_pack_buckets_mirrors_trainer(self):
        sizes = [(0.0, 10), (1.0, 20), (2.0, 30)]
        trainer_style = [
            (prio, total)
            for prio, _members, total, _dt in RealTrainer._dense_buckets(
                [(p, _FakeParam(n)) for p, n in sizes], 32
            )
        ]
        assert _pack_buckets(sizes, 32) == trainer_style

    @pytest.mark.parametrize("strategy", ["embrace", "allgather", "allreduce"])
    def test_predict_candidate_sane(self, strategy):
        pred = predict_candidate(
            make_profile(), make_workload(),
            Candidate(strategy=strategy), n_steps=3,
        )
        assert pred.step_time_s > 0
        assert 0.0 <= pred.stall_frac < 1.0
        assert pred.makespan_s == pytest.approx(pred.step_time_s * 3)

    def test_more_steps_amortize_warmup(self):
        p, w = make_profile(), make_workload()
        short = predict_candidate(p, w, default_candidate(), n_steps=2)
        long = predict_candidate(p, w, default_candidate(), n_steps=6)
        assert long.step_time_s <= short.step_time_s * 1.05

    def test_delayed_fold_changes_prediction(self):
        p, w = make_profile(), make_workload()
        base = predict_candidate(p, w, default_candidate(), n_steps=3)
        folded = predict_candidate(
            p, w, Candidate(knobs=SchedKnobs(delayed_min_rows=1_000)), n_steps=3
        )
        assert folded.step_time_s != pytest.approx(base.step_time_s, rel=1e-6)

    def test_rank_candidates_deterministic_and_complete(self):
        p, w = make_profile(), make_workload()
        space = SearchSpace(
            chunk_elems=(4_096, 65_536), max_chunks=(2, 8),
            bucket_elems=(65_536,),
        )
        r1 = rank_candidates(p, w, space, rungs=(2, 3), seed=0)
        r2 = rank_candidates(p, w, space, rungs=(2, 3), seed=123)
        assert len(r1) == len(space.candidates())
        assert [x.candidate for x in r1] == [x.candidate for x in r2]
        assert all(
            r1[i].stall_frac <= r1[i + 1].stall_frac
            or r1[i].n_steps != r1[i + 1].n_steps
            for i in range(len(r1) - 2)
        )

    def test_calibrate_overhead_clamps_and_fills(self):
        p, w = make_profile(), make_workload()
        cal = calibrate_overhead(p, w, n_steps=3)
        assert cal.step_overhead_s >= 0.0
        slow = dataclasses.replace(w, measured_step_s=1.0)
        assert calibrate_overhead(p, slow, n_steps=3).step_overhead_s > 0.9


class _FakeParam:
    def __init__(self, n):
        self.data = np.zeros(n, dtype=np.float32)


class TestKnobPlumbing:
    def test_open_group_takes_transport_from_profile(self):
        profile = make_profile(transport="queue")
        object.__setattr__  # frozen dataclass: build via with_choice
        profile = profile.with_choice(SchedKnobs(), transport="queue")
        with open_group(2, backend="thread", profile=profile) as g:
            assert g.transport == "queue"
        with open_group(2, backend="thread", transport="shm",
                        profile=profile) as g:
            assert g.transport == "shm"  # explicit wins
        with open_group(2, backend="thread") as g:
            assert g.transport == "shm"  # default unchanged

    def test_trainer_knob_resolution_order(self):
        cfg = GNMT8.tiny()
        profile = make_profile().with_choice(SchedKnobs(chunk_elems=2048))
        t = RealTrainer(cfg, profile=profile)
        assert t.knobs.chunk_elems == 2048
        t = RealTrainer(cfg, profile=profile, knobs=SchedKnobs(chunk_elems=512))
        assert t.knobs.chunk_elems == 512  # explicit wins
        t = RealTrainer(cfg, knobs={"chunk_elems": 4096})
        assert t.knobs == SchedKnobs(chunk_elems=4096)  # dict form
        assert RealTrainer(cfg).knobs == SchedKnobs()

    def test_runconfig_carries_knobs(self):
        cfg = RunConfig(model=GNMT8.tiny(), mode="real",
                        knobs=SchedKnobs(chunk_elems=128))
        assert cfg.knobs.chunk_elems == 128
        assert cfg.transport is None  # resolved later (profile-aware)


class TestKnobBitIdentity:
    def test_losses_identical_across_knobs(self):
        """Knobs move bytes between buckets/chunks and fold tiny delayed
        parts forward — never the arithmetic.  Any knob setting must
        train bit-identically to the defaults at a fixed seed."""
        cfg = GNMT8.tiny()

        def train(knobs):
            return RealTrainer(
                cfg, strategy="embrace", world_size=2, steps=3, seed=5,
                knobs=knobs,
            ).train()

        base = train(None)
        weird = train(SchedKnobs(
            chunk_elems=1_024, max_chunks=3, bucket_elems=8_192,
            delayed_min_rows=10_000,  # folds every delayed part forward
        ))
        assert weird.losses == base.losses
        for key in base.state:
            np.testing.assert_array_equal(weird.state[key], base.state[key])


@pytest.mark.slow
class TestPipeline:
    def test_autotune_thread_smoke(self):
        from repro.tune import autotune

        report = autotune(
            GNMT8.tiny(), world_size=2, backend="thread", transport=None,
            steps=3, seed=3, space=SearchSpace.smoke(),
            probe_sizes=(4_096, 65_536, 262_144), probe_iters=3,
            rungs=(2,), top_k=1,
        )
        assert report.losses_identical
        assert report.winner.measured_stall_frac <= (
            report.default.measured_stall_frac + 1e-12
        )
        assert report.validated[0].candidate == default_candidate()
        # The emitted profile is a working input for every consumer.
        tuned = TunedProfile.from_json(report.tuned_profile.to_json())
        RealTrainer(GNMT8.tiny(), profile=tuned)
        tuned.cost_model()

    def test_cli_tune_smoke(self, capsys):
        from repro.cli import main

        assert main(["tune", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fitted alpha-beta links" in out
        assert "winner" in out


class TestScheduleAxis:
    """The pipeline-schedule dimension of the search space."""

    def make_candidate(self, schedule="1f1b", stages=2, microbatches=2):
        base = default_candidate()
        knobs = dataclasses.replace(
            base.knobs,
            schedule=schedule,
            pipeline_stages=stages,
            microbatches=microbatches,
        )
        return dataclasses.replace(base, knobs=knobs)

    def test_data_parallel_axes_deduped(self):
        """data_parallel collapses the stage/microbatch axes to 1x1, so
        the grid holds one data-parallel point plus the pipelined ones."""
        space = SearchSpace(
            chunk_elems=(4096,), max_chunks=(2,), bucket_elems=(8192,),
            schedule=("data_parallel", "1f1b"),
            pipeline_stages=(2, 4), microbatches=(2, 4),
        )
        cands = space.candidates()
        assert len(cands) == 1 + 4
        dp = [c for c in cands if c.knobs.schedule == "data_parallel"]
        assert len(dp) == 1
        assert dp[0].knobs.pipeline_stages == dp[0].knobs.microbatches == 1

    def test_label_names_the_schedule(self):
        assert "1f1b@2x4" in self.make_candidate(microbatches=4).label()
        assert "@" not in default_candidate().label()

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="schedule"):
            dataclasses.replace(default_candidate().knobs, schedule="zigzag")
        with pytest.raises(ValueError, match="data_parallel"):
            dataclasses.replace(
                default_candidate().knobs,
                schedule="data_parallel", pipeline_stages=2,
            )

    def test_pipeline_prediction_routes_and_orders(self):
        profile = make_profile()
        workload = make_workload()
        runs = {
            name: predict_candidate(
                profile, workload, self.make_candidate(schedule=name), n_steps=4
            )
            for name in ("gpipe", "1f1b", "nested")
        }
        for run in runs.values():
            assert run.step_time_s > 0
            assert run.stall_frac >= 0
        assert runs["1f1b"].step_time_s <= runs["gpipe"].step_time_s + 1e-12
        assert runs["nested"].step_time_s <= runs["gpipe"].step_time_s + 1e-12

    def test_data_parallel_prediction_unchanged_by_axes(self):
        """Adding the schedule axes must not perturb the existing
        data-parallel prediction path."""
        profile = make_profile()
        workload = make_workload()
        base = predict_candidate(profile, workload, default_candidate(), n_steps=4)
        again = predict_candidate(
            profile, workload,
            self.make_candidate(schedule="data_parallel", stages=1, microbatches=1),
            n_steps=4,
        )
        assert again.step_time_s == pytest.approx(base.step_time_s, rel=1e-12)

    def test_real_trainer_rejects_pipeline_schedules(self):
        knobs = self.make_candidate().knobs
        with pytest.raises(ValueError, match="simulator-only"):
            RealTrainer(GNMT8.tiny(), world_size=2, knobs=knobs)
