"""Smoke tests: every example script runs end-to-end.

Each example is executed as a subprocess with small arguments; these
tests guard the user-facing entry points against API drift.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_comm_cost_explorer(self):
        out = run_example("comm_cost_explorer.py", "--nodes", "2", "--gpus", "4")
        assert "crossover" in out or "best method" in out or "overtakes" in out

    def test_comm_cost_explorer_single_gpu_nodes(self):
        out = run_example("comm_cost_explorer.py", "--nodes", "4", "--gpus", "1")
        assert "omnireduce" in out

    def test_timeline_explorer(self):
        out = run_example(
            "timeline_explorer.py", "--model", "GNMT-8", "--world", "8"
        )
        assert "EmbRace" in out and "step" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bit-identical to fused: True" in out
        assert "final weights bit-identical: True" in out
        assert "EmbRace" in out

    def test_convergence_equivalence(self):
        out = run_example("convergence_equivalence.py", "--steps", "6")
        assert "Curves exactly identical: True" in out

    def test_scaling_study_hybrid(self):
        out = run_example(
            "scaling_study.py", "--steps", "2", "--max-world", "16"
        )
        assert "losses bit-identical (hierarchical vs flat): True" in out
        assert "batch-stream node dedup" in out
        assert "replay ladder" in out

    def test_compression_study(self):
        out = run_example("compression_study.py", "--steps", "4")
        assert "less traffic" in out

    @pytest.mark.parametrize("args", [["--world", "2", "--steps", "3"]])
    def test_translation_embrace(self, args):
        out = run_example("translation_embrace.py", *args)
        assert "bit-identical across strategies: True" in out

    def test_serving_study(self):
        out = run_example(
            "serving_study.py", "--steps", "6", "--requests", "15",
            "--clients", "1", "3",
        )
        assert "bit-identical to offline replay: True" in out
        assert "torn batches (version-mixed reads): 0" in out
        assert "p50 ms" in out and "qps" in out

    def test_placement_study(self):
        out = run_example(
            "placement_study.py", "--steps", "10", "--requests", "10",
        )
        assert "learned plan [trace]" in out
        assert "losses bit-identical to offline replay (all runs): True" in out
        assert "torn batches (version-mixed reads): 0" in out
        assert "0 mismatched" in out

    def test_scenario_study(self):
        out = run_example(
            "scenario_study.py",
            "--models", "LM", "DLRM",
            "--strategies", "EmbRace", "Horovod-AllReduce",
            "--world", "4", "--stages", "2", "--microbatches", "2",
        )
        assert "stage 0" in out  # the rendered schedule grids
        assert "nested wins" in out
        assert "real-backend checks all bit-identical: True" in out

    def test_autotune_study(self, tmp_path):
        out_json = tmp_path / "tuned.json"
        out = run_example(
            "autotune_study.py", "--steps", "3", "--vocab", "512",
            "-o", str(out_json),
        )
        assert "fitted alpha-beta links" in out
        assert "loss curves bit-identical across candidates: True" in out
        from repro.tune import TunedProfile

        profile = TunedProfile.load(str(out_json))
        assert profile.knobs is not None
