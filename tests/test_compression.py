"""Tests for the gradient-compression extension (top-k + QSGD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import QSGDQuantizer, TopKCompressor
from repro.nn.parameter import Parameter
from repro.optim import SGD


class TestTopK:
    def test_selects_largest_magnitudes(self):
        c = TopKCompressor(ratio=0.25)
        grad = np.array([0.1, -5.0, 0.2, 3.0])
        idx, vals = c.compress(grad)
        assert set(idx.tolist()) == {1}
        assert vals[0] == -5.0

    def test_residual_accumulates_and_releases(self):
        c = TopKCompressor(ratio=0.5)
        grad = np.array([1.0, 10.0])
        idx1, _ = c.compress(grad)
        assert idx1.tolist() == [1]
        assert c.residual_norm == pytest.approx(1.0)
        # The skipped coordinate builds up and eventually wins.
        idx2, vals2 = c.compress(np.array([1.0, 0.1]))
        assert idx2.tolist() == [0]
        assert vals2[0] == pytest.approx(2.0)  # 1.0 residual + 1.0 new

    def test_error_feedback_preserves_total_gradient(self):
        """Sum of everything sent + final residual == sum of all grads."""
        rng = np.random.default_rng(0)
        c = TopKCompressor(ratio=0.1)
        total_sent = np.zeros(50)
        total_grad = np.zeros(50)
        for _ in range(20):
            g = rng.normal(size=50)
            total_grad += g
            idx, vals = c.compress(g)
            total_sent += c.decompress(idx, vals, (50,))
        residual = c._residual
        np.testing.assert_allclose(total_sent + residual, total_grad, atol=1e-9)

    def test_shape_change_rejected(self):
        c = TopKCompressor(ratio=0.5)
        c.compress(np.ones(4))
        with pytest.raises(ValueError):
            c.compress(np.ones(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(ratio=1.5)
        with pytest.raises(ValueError):
            TopKCompressor(min_k=0)

    def test_compressed_bytes(self):
        c = TopKCompressor(ratio=0.01)
        assert c.compressed_bytes(10_000) == 100 * 16

    def test_sgd_with_error_feedback_converges(self):
        """Quadratic toy problem: compressed SGD still reaches the optimum."""
        rng = np.random.default_rng(1)
        target = rng.normal(size=20)
        p = Parameter(np.zeros(20), name="w")
        opt = SGD([p], lr=0.2)
        c = TopKCompressor(ratio=0.2)
        for _ in range(300):
            grad = p.data - target
            idx, vals = c.compress(grad)
            p.grad = c.decompress(idx, vals, (20,))
            opt.step()
            p.zero_grad()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    @given(
        n=st.integers(2, 60),
        ratio=st.floats(0.05, 1.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_properties(self, n, ratio, seed):
        rng = np.random.default_rng(seed)
        c = TopKCompressor(ratio=ratio)
        grad = rng.normal(size=n)
        idx, vals = c.compress(grad)
        k = max(1, int(round(ratio * n)))
        assert len(idx) == min(k, n)
        assert len(np.unique(idx)) == len(idx)
        # Sent values + residual reconstruct the gradient exactly.
        np.testing.assert_allclose(
            c.decompress(idx, vals, (n,)) + c._residual, grad, atol=1e-12
        )


class TestQSGD:
    def test_zero_tensor(self):
        q = QSGDQuantizer()
        enc = q.encode(np.zeros(5))
        np.testing.assert_array_equal(q.decode(enc), np.zeros(5))

    def test_roundtrip_error_bounded(self):
        q = QSGDQuantizer(num_levels=255)
        x = np.random.default_rng(0).normal(size=100)
        err = np.abs(q.decode(q.encode(x)) - x)
        # Per-element error bounded by norm / levels.
        assert err.max() <= np.linalg.norm(x) / 255 + 1e-12

    def test_unbiasedness(self):
        """E[decode(encode(x))] == x — the QSGD convergence property."""
        x = np.array([0.3, -0.7, 0.05, 1.1])
        q = QSGDQuantizer(num_levels=4, rng=np.random.default_rng(0))
        decoded = np.mean([q.decode(q.encode(x)) for _ in range(4000)], axis=0)
        np.testing.assert_allclose(decoded, x, atol=0.02)

    def test_preserves_shape_and_signs(self):
        q = QSGDQuantizer()
        x = np.array([[1.0, -2.0], [0.0, 3.0]])
        out = q.decode(q.encode(x))
        assert out.shape == x.shape
        assert np.all(np.sign(out) == np.sign(x))

    def test_wire_size_smaller_than_dense(self):
        q = QSGDQuantizer()
        enc = q.encode(np.ones(1000))
        assert enc.nbytes < 1000 * 8
        assert q.compression_ratio(1000) > 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(num_levels=0)
        with pytest.raises(ValueError):
            QSGDQuantizer(num_levels=100_000)

    @given(n=st.integers(1, 50), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_decode_norm_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        q = QSGDQuantizer(num_levels=255, rng=rng)
        out = q.decode(q.encode(x))
        # Levels never exceed num_levels -> per-element |out| <= norm * (1 + 1/levels).
        assert np.abs(out).max() <= np.linalg.norm(x) * (1 + 1 / 255) + 1e-9


class TestRealTrainerDGC:
    """DGC integrated into the real trainer: converges, saves bytes."""

    def test_training_converges_with_compression(self):
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        cfg = GNMT8.tiny()
        r = RealTrainer(
            cfg, strategy="embrace", world_size=2, steps=12, lr=5e-3,
            seed=0, dgc_ratio=0.1,
        ).train()
        assert np.mean(r.losses[-3:]) < np.mean(r.losses[:3])

    def test_compression_reduces_dense_bytes(self):
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        cfg = GNMT8.tiny()
        kw = dict(strategy="allgather", world_size=2, steps=3, seed=0)
        dense = RealTrainer(cfg, **kw).train()
        compressed = RealTrainer(cfg, dgc_ratio=0.05, **kw).train()
        assert compressed.comm_bytes < dense.comm_bytes

    def test_ratio_validation(self):
        from repro.engine.trainer_real import RealTrainer
        from repro.models import LM

        with pytest.raises(ValueError):
            RealTrainer(LM.tiny(), dgc_ratio=0.0)
        with pytest.raises(ValueError):
            RealTrainer(LM.tiny(), dgc_ratio=1.5)


class TestDGCAccumulation:
    """The trainer's one-pass decode-and-sum: bincount over the rank-
    order concatenated selections replaces a dense zeros scratch plus
    one np.add.at per rank.  np.bincount accumulates sequentially in
    array order, so the result is bit-identical to the old loop — and
    the final cast keeps float32 gradients float32 instead of silently
    promoting them through the float64 accumulator."""

    @staticmethod
    def _gathered(dtype):
        rng = np.random.default_rng(0)
        return [
            (
                rng.integers(0, 50, size=20).astype(np.int64),
                rng.normal(size=20).astype(dtype),
            )
            for _ in range(3)
        ]

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bit_equal_to_per_rank_add_at_and_keeps_dtype(self, dtype):
        gathered = self._gathered(dtype)
        size, world = 50, 3
        all_idx = np.concatenate([g for g, _ in gathered])
        all_vals = np.concatenate([v for _, v in gathered])
        total = np.bincount(all_idx, weights=all_vals, minlength=size)
        new = (total / world).astype(dtype, copy=False)
        ref = np.zeros(size)  # the old float64 scratch
        for idx, vals in gathered:
            np.add.at(ref, idx, vals)
        assert new.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(new, (ref / world).astype(dtype))

    def test_trainer_dgc_overlap_matches_sync(self):
        """End-to-end: the DGC dense path through the scheduler facade
        is bit-identical between overlapped and inline execution."""
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        kw = dict(strategy="allgather", world_size=2, steps=3, seed=1,
                  dgc_ratio=0.2)
        sync = RealTrainer(GNMT8.tiny(), overlap=False, **kw).train()
        over = RealTrainer(GNMT8.tiny(), overlap=True, **kw).train()
        assert sync.losses == over.losses
        for key in sync.state:
            np.testing.assert_array_equal(sync.state[key], over.state[key],
                                          err_msg=key)
