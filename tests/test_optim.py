"""Optimizer tests, including the §5.7 split-update equivalence properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.parameter import Parameter
from repro.optim import SGD, Adagrad, Adam, EmbraceAdam
from repro.tensors import SparseRows


def dense_param(shape=(4, 3), seed=0):
    rng = np.random.default_rng(seed)
    return Parameter(rng.normal(size=shape), name="w")


def sparse_param(shape=(8, 3), seed=0):
    rng = np.random.default_rng(seed)
    return Parameter(rng.normal(size=shape), name="emb", sparse_grad=True)


def sparse_grad(indices, shape=(8, 3), seed=1):
    rng = np.random.default_rng(seed)
    idx = np.array(indices, dtype=np.int64)
    return SparseRows(idx, rng.normal(size=(len(idx), shape[1])), shape[0])


# --------------------------------------------------------------------- #
# Base mechanics
# --------------------------------------------------------------------- #
class TestBase:
    def test_requires_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        with pytest.raises(ValueError):
            SGD([dense_param()], lr=0)

    def test_step_skips_gradless(self):
        p = dense_param()
        before = p.data.copy()
        SGD([p], lr=0.1).step()
        assert np.array_equal(p.data, before)

    def test_sparse_param_rejects_dense_grad(self):
        p = sparse_param()
        p.grad = np.zeros(p.data.shape)
        with pytest.raises(TypeError):
            SGD([p], lr=0.1).step()

    def test_zero_grad(self):
        p = dense_param()
        p.grad = np.ones_like(p.data)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


# --------------------------------------------------------------------- #
# SGD
# --------------------------------------------------------------------- #
class TestSGD:
    def test_dense_update(self):
        p = dense_param()
        before = p.data.copy()
        p.grad = np.ones_like(p.data)
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, before - 0.5)

    def test_momentum(self):
        p = dense_param()
        opt = SGD([p], lr=1.0, momentum=0.9)
        before = p.data.copy()
        p.grad = np.ones_like(p.data)
        opt.step()
        opt.step()
        # velocity: 1, then 1.9 -> total 2.9
        np.testing.assert_allclose(p.data, before - 2.9)

    def test_sparse_touches_only_rows(self):
        p = sparse_param()
        before = p.data.copy()
        p.grad = sparse_grad([2, 5])
        SGD([p], lr=0.1).step()
        changed = np.any(p.data != before, axis=1)
        assert set(np.nonzero(changed)[0]) == {2, 5}

    def test_sparse_coalesces_duplicates(self):
        p = sparse_param()
        before = p.data.copy()
        g = SparseRows(np.array([1, 1]), np.ones((2, 3)), 8)
        p.grad = g
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data[1], before[1] - 0.2)


# --------------------------------------------------------------------- #
# Adagrad
# --------------------------------------------------------------------- #
class TestAdagrad:
    def test_dense_matches_reference(self):
        p = dense_param()
        before = p.data.copy()
        g = np.full_like(p.data, 2.0)
        p.grad = g
        Adagrad([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, before - 0.1 * 2.0 / (2.0 + 1e-10))

    def test_sparse_split_equivalence(self):
        """Element-wise optimizer: two disjoint parts == one fused update."""
        full = sparse_grad([1, 2, 5, 6])
        prior, delayed = full.split(np.array([2, 6]))

        p1, p2 = sparse_param(seed=3), sparse_param(seed=3)
        opt1, opt2 = Adagrad([p1], lr=0.1), Adagrad([p2], lr=0.1)

        p1.grad = full
        opt1.step()

        p2.grad = prior
        opt2.step()
        p2.grad = delayed
        opt2.step()

        np.testing.assert_allclose(p1.data, p2.data)


# --------------------------------------------------------------------- #
# Adam
# --------------------------------------------------------------------- #
class TestAdam:
    def test_dense_first_step_is_lr_sized(self):
        p = dense_param()
        before = p.data.copy()
        p.grad = np.full_like(p.data, 3.0)
        Adam([p], lr=0.01).step()
        # After bias correction the first Adam step is ~lr * sign(grad).
        np.testing.assert_allclose(p.data, before - 0.01, atol=1e-4)

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Adam([dense_param()], betas=(1.5, 0.9))

    def test_sparse_only_touches_rows(self):
        p = sparse_param()
        before = p.data.copy()
        p.grad = sparse_grad([0, 7])
        Adam([p]).step()
        changed = np.any(p.data != before, axis=1)
        assert set(np.nonzero(changed)[0]) == {0, 7}

    def test_naive_split_is_NOT_equivalent(self):
        """Vanilla Adam applied in two parts diverges from fused — the
        problem §5.7 describes (step state advances twice)."""
        full = sparse_grad([1, 2, 5, 6], seed=9)
        prior, delayed = full.split(np.array([2, 6]))

        p1, p2 = sparse_param(seed=4), sparse_param(seed=4)
        opt1, opt2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1)

        # Warm both with an identical first iteration so step counters are
        # past the bias-correction-neutral first step.
        warm = sparse_grad(list(range(8)), seed=11)
        for p, opt in ((p1, opt1), (p2, opt2)):
            p.grad = warm
            opt.step()
            p.zero_grad()

        p1.grad = full
        opt1.step()

        p2.grad = prior
        opt2.step()
        p2.grad = delayed
        opt2.step()

        assert not np.allclose(p1.data, p2.data)


# --------------------------------------------------------------------- #
# EmbraceAdam: the paper's fix
# --------------------------------------------------------------------- #
class TestEmbraceAdam:
    def _run_fused(self, grads, seed=5):
        p = sparse_param(seed=seed)
        opt = EmbraceAdam([p], lr=0.1)
        for g in grads:
            p.grad = g
            opt.step()
            p.zero_grad()
        return p.data

    def _run_split(self, grads, split_rows, seed=5):
        p = sparse_param(seed=seed)
        opt = EmbraceAdam([p], lr=0.1)
        for g, rows in zip(grads, split_rows):
            prior, delayed = g.coalesce().split(rows)
            opt.apply_sparse_part(p, prior, final=False)
            opt.apply_sparse_part(p, delayed, final=True)
        return p.data

    def test_split_equivalence_single_step(self):
        g = sparse_grad([0, 1, 4, 5], seed=21)
        fused = self._run_fused([g])
        split = self._run_split([g], [np.array([1, 5])])
        np.testing.assert_array_equal(fused, split)

    def test_split_equivalence_multi_step(self):
        grads = [sparse_grad([0, 1, 4], seed=31), sparse_grad([1, 2, 6], seed=32)]
        rows = [np.array([1]), np.array([2, 6])]
        np.testing.assert_array_equal(
            self._run_fused(grads), self._run_split(grads, rows)
        )

    def test_empty_prior_part(self):
        g = sparse_grad([3, 4], seed=41)
        fused = self._run_fused([g])
        split = self._run_split([g], [np.array([], dtype=np.int64)])
        np.testing.assert_array_equal(fused, split)

    def test_requires_sparse_param(self):
        p = dense_param()
        opt = EmbraceAdam([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.apply_sparse_part(p, sparse_grad([1]), final=True)

    def test_step_counter_advances_once(self):
        p = sparse_param()
        opt = EmbraceAdam([p], lr=0.1)
        g = sparse_grad([1, 2])
        prior, delayed = g.split(np.array([1]))
        opt.apply_sparse_part(p, prior, final=False)
        assert opt.state_for(p)["step"] == 0
        opt.apply_sparse_part(p, delayed, final=True)
        assert opt.state_for(p)["step"] == 1

    @given(
        rows=st.lists(st.integers(0, 7), min_size=1, max_size=12),
        split=st.lists(st.integers(0, 7), max_size=8),
        seed=st.integers(0, 1000),
        nsteps=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_equivalence_property(self, rows, split, seed, nsteps):
        """For any gradient and any split set, EmbraceAdam's two-part
        application equals the fused update bit-for-bit over multiple steps."""
        rng = np.random.default_rng(seed)
        grads = [
            SparseRows(
                np.array(rows, dtype=np.int64),
                rng.normal(size=(len(rows), 3)),
                8,
            )
            for _ in range(nsteps)
        ]
        split_rows = [np.array(split, dtype=np.int64)] * nsteps
        fused = self._run_fused(grads, seed=7)
        split_result = self._run_split(grads, split_rows, seed=7)
        np.testing.assert_array_equal(fused, split_result)


class TestClipGradNorm:
    from repro.optim import clip_grad_norm, global_grad_norm  # noqa: F401

    def test_norm_computation_mixed(self):
        from repro.optim import global_grad_norm

        d = dense_param()
        d.grad = np.full(d.data.shape, 2.0)
        s = sparse_param()
        s.grad = SparseRows(np.array([1, 1]), np.ones((2, 3)), 8)
        # Sparse norm uses the coalesced values (duplicates summed).
        expected = np.sqrt(4.0 * d.data.size + 4.0 * 3)
        assert global_grad_norm([d, s]) == pytest.approx(expected)

    def test_clip_scales_everything(self):
        from repro.optim import clip_grad_norm, global_grad_norm

        d = dense_param()
        d.grad = np.full(d.data.shape, 3.0)
        s = sparse_param()
        s.grad = sparse_grad([0, 4])
        before = global_grad_norm([d, s])
        returned = clip_grad_norm([d, s], max_norm=1.0)
        assert returned == pytest.approx(before)
        assert global_grad_norm([d, s]) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        from repro.optim import clip_grad_norm

        d = dense_param()
        d.grad = np.full(d.data.shape, 1e-3)
        grad_before = d.grad.copy()
        clip_grad_norm([d], max_norm=100.0)
        np.testing.assert_array_equal(d.grad, grad_before)

    def test_gradless_params_skipped(self):
        from repro.optim import clip_grad_norm

        assert clip_grad_norm([dense_param()], max_norm=1.0) == 0.0

    def test_validation(self):
        from repro.optim import clip_grad_norm

        with pytest.raises(ValueError):
            clip_grad_norm([dense_param()], max_norm=0.0)


class TestAdamWeightDecay:
    def test_decay_shrinks_dense_params(self):
        p = dense_param()
        before = p.data.copy()
        p.grad = np.zeros_like(p.data)
        Adam([p], lr=0.1, weight_decay=0.5).step()
        # Pure decay (zero gradient): data *= (1 - lr*wd).
        np.testing.assert_allclose(p.data, before * 0.95)

    def test_sparse_params_not_decayed(self):
        p = sparse_param()
        before = p.data.copy()
        p.grad = SparseRows.empty(8, 3)
        Adam([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_array_equal(p.data, before)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            Adam([dense_param()], weight_decay=-0.1)
