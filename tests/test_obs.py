"""repro.obs: ring recorder, payload/merge schema, metric parity, export.

The contract under test is the PR's core claim: a *real* traced run and
a *simulated* timeline are the same kind of object — one
:class:`~repro.sim.trace.Trace` schema, one ``computation_stall()``
implementation, one Chrome exporter.
"""

import json
import time

import numpy as np
import pytest

from repro.comm import open_group
from repro.engine.trainer_sim import make_context
from repro.obs import (
    NULL_RECORDER,
    SpanRecorder,
    TraceBundle,
    TraceConfig,
    as_trace_config,
    entries_from_payload,
    merge_payloads,
    rank_resource,
)
from repro.sim import execute
from repro.sim.multirank import expand_to_ranks
from repro.sim.trace import Trace, TraceEntry
from repro.sim.trace_export import to_chrome_trace
from repro.models import GNMT8
from repro.strategies import EmbRace


class FakeClock:
    """Deterministic clock: set ``.t`` then read it."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def _recorder(rank=0, capacity=16) -> tuple[SpanRecorder, FakeClock]:
    clk = FakeClock()
    return SpanRecorder(rank=rank, capacity=capacity, clock=clk), clk


class TestSpanRecorder:
    def test_records_relative_spans(self):
        rec, clk = _recorder()
        clk.t = 1.0
        t0 = rec.t()
        clk.t = 3.5
        rec.rec("fwd", "compute", "compute", t0)
        payload = rec.payload()
        assert len(rec) == 1
        assert payload["start"][0] == pytest.approx(1.0)  # relative to t=0 origin
        assert payload["end"][0] == pytest.approx(3.5)
        assert payload["names"][payload["key"][0]] == ("fwd", "compute", "compute")

    def test_ring_wrap_drops_oldest(self):
        rec, clk = _recorder(capacity=4)
        for i in range(6):
            clk.t = float(i)
            rec.rec(f"s{i}", "compute", "compute", clk.t)
        assert len(rec) == 4
        assert rec.dropped == 2
        payload = rec.payload()
        names = [payload["names"][k][0] for k in payload["key"]]
        assert names == ["s2", "s3", "s4", "s5"]  # oldest-first unroll
        assert payload["dropped"] == 2

    def test_rebase_zeroes_clock_and_forgets(self):
        rec, clk = _recorder()
        rec.rec("early", "compute", "compute", 0.0)
        clk.t = 10.0
        rec.rebase()
        clk.t = 10.25
        rec.rec("late", "compute", "compute", 10.1)
        payload = rec.payload()
        assert len(rec) == 1
        assert payload["start"][0] == pytest.approx(0.1)
        assert payload["end"][0] == pytest.approx(0.25)

    def test_nested_collectives_record_only_outermost(self):
        rec, clk = _recorder()
        t_outer = rec.coll_begin()  # hierarchical_allreduce ...
        t_inner = rec.coll_begin()  # ... delegating to allreduce
        clk.t = 1.0
        rec.coll_end("allreduce", t_inner)
        clk.t = 2.0
        rec.coll_end("hierarchical_allreduce", t_outer)
        payload = rec.payload()
        assert len(rec) == 1
        assert payload["names"][payload["key"][0]][0] == "hierarchical_allreduce"

    def test_phase_lane_toggle(self):
        rec, clk = _recorder()
        rec.rec_phase("send", 0.0)
        assert rec.payload()["names"][0] == ("send", "comm.phase", "comm")
        quiet = SpanRecorder(capacity=8, clock=FakeClock(), phases=False)
        quiet.rec_phase("send", 0.0)
        assert len(quiet) == 0

    def test_counters_and_wire_bytes(self):
        rec, _ = _recorder()
        rec.count("retries")
        rec.count("retries", 2.0)
        rec.count_bytes(np.zeros(8, dtype=np.float32))
        rec.count_bytes(np.zeros(3, dtype=np.int64))
        assert rec.counters["retries"] == 3.0
        assert rec.counters["wire_bytes.float32"] == 32
        assert rec.counters["wire_bytes.int64"] == 24

    def test_as_trace_config(self):
        assert as_trace_config(None) is None
        assert as_trace_config(False) is None
        assert as_trace_config(True) == TraceConfig()
        cfg = TraceConfig(capacity=8, phases=False)
        assert as_trace_config(cfg) is cfg
        with pytest.raises(TypeError):
            as_trace_config("yes")

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.coll_begin() == 0.0
        NULL_RECORDER.rec("x", "compute", "compute", 0.0)
        NULL_RECORDER.rec_phase("send", 0.0)
        NULL_RECORDER.count_bytes(np.zeros(4))
        with NULL_RECORDER.span("step"):
            pass  # no state anywhere to assert on -- that's the point


class TestMergeSchema:
    def _two_rank_bundle(self) -> TraceBundle:
        payloads = []
        for rank in (0, 1):
            rec, clk = _recorder(rank=rank)
            clk.t = 0.1
            rec.rec("fwd_bwd", "compute", "compute", 0.0)
            clk.t = 0.3
            rec.rec("allreduce", "comm", "comm", 0.1)
            rec.count("wire_bytes.float32", 64.0)
            payloads.append(rec.payload())
        return merge_payloads(payloads)

    def test_payload_roundtrip(self):
        rec, clk = _recorder(rank=3)
        clk.t = 2.0
        rec.rec("opt", "compute", "compute", 1.0)
        [entry] = entries_from_payload(rec.payload())
        assert entry == TraceEntry("opt", "compute:3", "compute", 1.0, 2.0)

    def test_merged_lanes_follow_multirank_schema(self):
        bundle = self._two_rank_bundle()
        assert bundle.trace.resources() == [
            "comm:0", "comm:1", "compute:0", "compute:1",
        ]
        assert bundle.ranks == [0, 1]
        assert bundle.total_counters() == {"wire_bytes.float32": 128.0}

    def test_stall_is_the_simulator_code_path(self):
        bundle = self._two_rank_bundle()
        # makespan 0.3, useful compute 0.1 -> stall 0.2 on either rank.
        assert bundle.computation_stall() == pytest.approx(0.2)
        assert bundle.per_rank_stall() == {
            0: pytest.approx(0.2), 1: pytest.approx(0.2),
        }
        # Same function, called directly on the underlying Trace.
        assert bundle.trace.computation_stall("compute:1") == pytest.approx(0.2)

    def test_unknown_lane_raises_instead_of_lying(self):
        bundle = self._two_rank_bundle()
        with pytest.raises(ValueError, match="compute:7"):
            bundle.computation_stall(rank=7)
        with pytest.raises(ValueError, match="lanes"):
            bundle.trace.computation_stall()  # bare "compute" isn't a lane
        assert Trace([]).computation_stall() == 0.0  # empty stays 0, not an error

    def test_sim_multirank_trace_wraps_identically(self):
        """A simulator-expanded trace drops into TraceBundle unchanged."""
        ctx = make_context(GNMT8, "rtx3090", 4)
        expanded = expand_to_ranks(EmbRace().build_step(ctx), world_size=2)
        trace = execute(expanded)
        bundle = TraceBundle(trace, counters={0: {}, 1: {}})
        assert bundle.computation_stall(0) == pytest.approx(
            trace.computation_stall(rank_resource("compute", 0))
        )

    def test_chrome_export_groups_ranks_into_processes(self):
        bundle = self._two_rank_bundle()
        blob = json.dumps(
            to_chrome_trace(bundle.trace, counters=bundle.total_counters())
        )
        doc = json.loads(blob)
        events = doc["traceEvents"]
        assert {e["pid"] for e in events} == {0, 1}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 4
        assert doc["otherData"] == {"wire_bytes.float32": 128.0}


def _sleepy_step(comm, compute_s: float, reps: int):
    """A controlled real workload: known compute, tiny comm."""
    obs = comm.obs
    for _ in range(reps):
        with obs.span("fwd_bwd"):
            time.sleep(compute_s)
        comm.allreduce(np.ones(4, dtype=np.float32))
    return comm.rank


class TestTracedRuns:
    def test_thread_traced_run_measures_known_compute(self):
        """Real-run stall parity: makespan minus the sleeps we injected."""
        compute_s, reps = 0.02, 3
        with open_group(2, trace=True) as group:
            group.run(_sleepy_step, compute_s, reps)
            bundle = group.last_trace
        assert bundle is not None
        useful = bundle.busy_time("compute")
        assert useful >= compute_s * reps  # sleeps are a lower bound
        expected_stall = bundle.trace.makespan - useful
        assert bundle.computation_stall() == pytest.approx(expected_stall)
        # Collective spans landed on each rank's comm lane.
        assert bundle.busy_time("comm", rank=1) > 0.0
        counters = bundle.total_counters()
        assert counters.get("wire_bytes.float32", 0.0) > 0.0

    def test_untraced_run_records_nothing(self):
        with open_group(2) as group:
            results = group.run(_sleepy_step, 0.0, 1)
            assert group.last_trace is None
        assert results == [0, 1]

    def test_tracing_does_not_change_results(self):
        def fn(comm):
            return comm.allreduce(np.arange(4.0) * (comm.rank + 1))

        with open_group(2) as group:
            plain = group.run(fn)
        with open_group(2, trace=True) as group:
            traced = group.run(fn)
        for a, b in zip(plain, traced):
            np.testing.assert_array_equal(a, b)

    def test_phase_lane_off_by_config(self):
        with open_group(2, trace=TraceConfig(phases=False)) as group:
            group.run(_sleepy_step, 0.0, 1)
            lanes = group.last_trace.trace.resources()
        assert not [lane for lane in lanes if lane.startswith("comm.phase")]

    def test_ring_capacity_respected_under_pressure(self):
        with open_group(2, trace=TraceConfig(capacity=8)) as group:
            group.run(_sleepy_step, 0.0, 10)
            bundle = group.last_trace
        assert all(d > 0 for d in bundle.dropped.values())
        per_rank = {r: 0 for r in bundle.ranks}
        for e in bundle.trace.entries:
            per_rank[int(e.resource.rsplit(":", 1)[1])] += 1
        assert all(n == 8 for n in per_rank.values())


@pytest.mark.slow
class TestProcessTracedRun:
    def test_four_rank_shm_traced_run_exports_chrome_json(self, tmp_path):
        """The acceptance scenario: 4 shm workers, merged Perfetto trace."""
        from repro.sim.trace_export import write_chrome_trace

        with open_group(4, backend="process", trace=True) as group:
            group.run(_sleepy_step, 0.005, 2)
            bundle = group.last_trace
        assert bundle is not None and bundle.ranks == [0, 1, 2, 3]
        assert bundle.computation_stall() > 0.0
        assert bundle.total_counters().get("segpool.hits", 0.0) >= 0.0
        out = tmp_path / "trace.json"
        write_chrome_trace(bundle.trace, str(out), counters=bundle.total_counters())
        doc = json.loads(out.read_text())
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1, 2, 3}


class TestRecorderThreadSafety:
    def test_concurrent_recording_from_two_threads(self):
        """The comm scheduler records collective spans from its comm
        thread while the training thread records compute spans: no span
        lost, no counter torn, per-thread collective nesting."""
        import threading

        from repro.obs.recorder import SpanRecorder

        rec = SpanRecorder(rank=0, capacity=8192)
        per_thread = 500

        def hammer(lane):
            for _ in range(per_thread):
                t0 = rec.coll_begin()
                rec.coll_end(f"coll.{lane}", t0)
                rec.rec(f"span.{lane}", lane, "compute", rec.t())
                rec.count("n", 1.0)

        threads = [
            threading.Thread(target=hammer, args=(lane,))
            for lane in ("compute", "comm")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 4 * per_thread
        assert rec.counters["n"] == 2 * per_thread
        assert rec.dropped == 0
        names = {n for n, _, _ in rec.payload()["names"]}
        assert names == {"coll.compute", "coll.comm", "span.compute",
                         "span.comm"}


class TestRowAccessCounters:
    def test_count_rows_accumulates_and_ranks(self):
        from repro.obs.recorder import SpanRecorder

        rec = SpanRecorder(rank=0)
        rec.count_rows("emb", [0, 0, 3, 7])
        rec.count_rows("emb", np.array([[3, 3], [0, 9]]))  # any shape raveled
        hot = rec.hot_rows("emb")
        assert hot[0] == (0, 3) and hot[1] == (3, 3)  # count desc, row asc
        assert dict(hot)[7] == 1 and dict(hot)[9] == 1
        assert rec.hot_rows("emb", k=1) == [(0, 3)]
        assert rec.hot_rows("missing") == []
        rec.count_rows("emb", [])  # no-op
        assert dict(rec.hot_rows("emb"))[0] == 3

    def test_count_rows_grows_on_demand(self):
        from repro.obs.recorder import SpanRecorder

        rec = SpanRecorder(rank=0)
        rec.count_rows("emb", [2])
        rec.count_rows("emb", [100_000])  # forces a regrow
        assert dict(rec.hot_rows("emb")) == {2: 1, 100_000: 1}

    def test_payload_ships_topk_and_bundle_merges(self):
        from repro.obs.recorder import SpanRecorder

        payloads = []
        for rank in range(2):
            rec = SpanRecorder(rank=rank, row_topk=2)
            rec.count_rows("emb", [0] * (5 - rank) + [1] * 2 + [2 + rank])
            payloads.append(rec.payload())
        summary = payloads[0]["row_counts"]["emb"]
        assert list(summary["ids"]) == [0, 1]  # top-2 only
        assert summary["total"] == 8 and summary["rows_seen"] == 3
        bundle = merge_payloads(payloads)
        assert bundle.row_tables() == ["emb"]
        assert bundle.hot_rows("emb", 2) == [(0, 9), (1, 4)]
        assert bundle.row_access_total("emb") == 15  # exact despite top-k

    def test_row_topk_config_round_trip(self):
        from repro.obs.recorder import SpanRecorder

        cfg = TraceConfig(row_topk=3)
        rec = SpanRecorder.from_config(0, cfg)
        rec.count_rows("emb", list(range(10)))
        assert len(rec.hot_rows("emb")) == 3
        with pytest.raises(ValueError):
            TraceConfig(row_topk=0)

    def test_null_recorder_accepts_row_counts(self):
        NULL_RECORDER.count_rows("emb", [1, 2, 3])  # must not raise

    def test_traced_training_records_embedding_row_counts(self):
        """The trainer's id stream feeds the hot-row counters (satellite:
        training-side recording; the serve-side twin lives in
        tests/test_serve.py)."""
        from repro.engine.run import RunConfig, run
        from repro.models import get_config

        result = run(RunConfig(
            model=get_config("GNMT-8").tiny(),
            mode="real",
            strategy="embrace",
            world_size=2,
            steps=2,
            backend="thread",
            trace=True,
        ))
        bundle = result.raw.trace
        assert bundle.row_tables(), "no row counters recorded"
        for table in bundle.row_tables():
            assert bundle.row_access_total(table) > 0
            assert bundle.hot_rows(table, 5)
