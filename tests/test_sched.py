"""The async priority-scheduled communication engine (repro.comm.sched).

Covers the scheduler's contract: priority order with FIFO ties, urgent
items preempting queued dense chunks, the token protocol keeping every
rank on one global execution order, bit-identical inline (synchronous)
mode, error propagation through handles, the facade's symmetric-only
surface, and composition with the fault injector.
"""

import threading

import numpy as np
import pytest

from repro.comm import (
    CommScheduler,
    SchedComm,
    SchedulerClosed,
    dense_chunk_bounds,
    run_threaded,
)
from repro.faults import FaultPlan, run_threaded_with_faults


class TestChunkBounds:
    def test_small_tensor_is_one_chunk(self):
        assert dense_chunk_bounds(1000) == [0, 1000]

    def test_large_tensor_splits(self):
        bounds = dense_chunk_bounds(200_000, chunk_elems=65536)
        assert bounds[0] == 0 and bounds[-1] == 200_000
        assert len(bounds) == 5  # ceil(200000/65536) = 4 chunks

    def test_max_chunks_cap(self):
        bounds = dense_chunk_bounds(10_000_000, chunk_elems=65536, max_chunks=8)
        assert len(bounds) == 9

    def test_deterministic_in_size_only(self):
        assert dense_chunk_bounds(123_456) == dense_chunk_bounds(123_456)


class TestPriorityOrder:
    def test_priority_order_with_fifo_ties(self):
        """Leader pops (priority, submit-seq): lowest first, ties FIFO."""

        def worker(comm):
            sched = CommScheduler(comm)
            try:
                sched.pause()
                handles = [
                    sched.submit(
                        lambda c, i=i: c.rank * 100 + i,
                        priority=prio,
                        label=f"item{i}",
                    )
                    for i, prio in enumerate([5.0, 1.0, 3.0, 1.0, -1.0])
                ]
                sched.resume()
                results = [h.wait(30) for h in handles]
                sched.flush()
                return results, sched.executed_labels
            finally:
                sched.close()

        results, order = run_threaded(1, worker)[0]
        assert results == [0 + i for i in range(5)]
        assert order == ["item4", "item1", "item3", "item2", "item0"]

    def test_urgent_item_preempts_queued_dense_chunks(self):
        """An item submitted *after* a chunked dense reduce overtakes the
        chunks still in the queue — preemption at chunk granularity."""
        gate = threading.Event()
        entered = threading.Event()

        def blocker(comm):
            entered.set()
            gate.wait(30)

        def worker(comm):
            sched = CommScheduler(comm)
            try:
                sched.submit(blocker, priority=0.0, label="blocker")
                entered.wait(30)  # chunks below queue behind the blocker
                flat = np.arange(400, dtype=np.float64)
                handles = sched.allreduce_chunks(
                    flat, priority=5.0, label="dense", chunk_elems=100
                )
                urgent = sched.submit(lambda c: "now", priority=-1.0, label="prior")
                gate.set()
                assert urgent.wait(30) == "now"
                for h in handles:
                    h.wait(30)
                return sched.executed_labels
            finally:
                sched.close()

        order = run_threaded(1, worker)[0]
        assert order[0] == "blocker"
        assert order[1] == "prior"  # beat all four queued chunks
        assert order[2:] == [f"dense#c{i}" for i in range(4)]


class TestTokenProtocol:
    def test_all_ranks_share_one_execution_order(self):
        """Followers obey rank 0's pop order even for collectives."""

        def worker(comm):
            sched = CommScheduler(comm)
            try:
                if comm.rank == 0:
                    sched.pause()
                handles = [
                    sched.submit(
                        lambda c, i=i: c.allgather(c.rank * 10 + i),
                        priority=prio,
                        label=f"item{i}",
                    )
                    for i, prio in enumerate([5.0, 1.0, 3.0, -1.0])
                ]
                if comm.rank == 0:
                    sched.resume()
                results = [h.wait(30) for h in handles]
                sched.flush()
                return results, sched.executed_labels
            finally:
                sched.close()

        outs = run_threaded(3, worker)
        want_order = ["item3", "item1", "item2", "item0"]
        for results, order in outs:
            assert order == want_order
            for i, res in enumerate(results):
                assert res == [0 + i, 10 + i, 20 + i]

    def test_allreduce_chunks_sums_across_ranks(self):
        def worker(comm):
            sched = CommScheduler(comm)
            try:
                flat = np.full(1000, float(comm.rank + 1))
                for h in sched.allreduce_chunks(flat, chunk_elems=64):
                    h.wait(30)
                return flat
            finally:
                sched.close()

        out = run_threaded(2, worker)
        for flat in out:
            assert np.array_equal(flat, np.full(1000, 3.0))


class TestInlineMode:
    def test_inline_is_bit_identical_to_overlapped(self):
        def worker(comm, overlap):
            sched = CommScheduler(comm, overlap=overlap)
            try:
                rng = np.random.default_rng(comm.rank)
                flat = rng.normal(size=10_000)
                handles = sched.allreduce_chunks(flat, chunk_elems=1000)
                gathered = sched.submit(
                    lambda c: c.allgather(float(c.rank)), priority=-1.0
                ).wait(30)
                for h in handles:
                    h.wait(30)
                return flat, gathered
            finally:
                sched.close()

        overlapped = run_threaded(3, worker, True)
        inline = run_threaded(3, worker, False)
        for (f_o, g_o), (f_i, g_i) in zip(overlapped, inline):
            assert np.array_equal(f_o, f_i)
            assert g_o == g_i

    def test_inline_executes_in_submission_order(self):
        def worker(comm):
            sched = CommScheduler(comm, overlap=False)
            h = sched.submit(lambda c: "a", priority=100.0, label="late")
            assert h.done() and h.wait() == "a"  # ran inside submit
            sched.submit(lambda c: "b", priority=-100.0, label="early")
            sched.close()
            return sched.executed_labels

        assert run_threaded(1, worker)[0] == ["late", "early"]


class TestErrorHandling:
    def test_item_error_propagates_and_aborts(self):
        """Handles re-raise the *original* exception; the control surface
        (submit/flush) raises SchedulerClosed chained from it."""

        def worker(comm):
            sched = CommScheduler(comm)
            try:
                h = sched.submit(lambda c: 1 // 0, label="boom")
                with pytest.raises(ZeroDivisionError):
                    h.wait(30)
                with pytest.raises(SchedulerClosed) as exc:
                    sched.flush()
                assert isinstance(exc.value.__cause__, ZeroDivisionError)
                with pytest.raises(SchedulerClosed):
                    sched.submit(lambda c: None)
            finally:
                sched.close()
            return True

        assert run_threaded(1, worker)[0] is True

    def test_close_is_idempotent(self):
        def worker(comm):
            sched = CommScheduler(comm)
            sched.submit(lambda c: c.allgather(comm.rank)).wait(30)
            sched.close()
            sched.close()
            return True

        assert all(run_threaded(2, worker))


class TestSchedCommFacade:
    def test_collectives_route_through_engine(self):
        def worker(comm):
            sched = CommScheduler(comm)
            try:
                coll = SchedComm(sched)
                gathered = coll.allgather(comm.rank)
                summed = coll.allreduce(np.full(10, float(comm.rank + 1)))
                root = coll.broadcast(comm.rank if comm.rank == 0 else None)
                coll.barrier()
                return gathered, summed, root
            finally:
                sched.close()

        for gathered, summed, root in run_threaded(2, worker):
            assert gathered == [0, 1]
            assert np.array_equal(summed, np.full(10, 3.0))
            assert root == 0

    def test_point_to_point_raises(self):
        def worker(comm):
            sched = CommScheduler(comm)
            try:
                coll = SchedComm(sched)
                with pytest.raises(RuntimeError):
                    coll.send(1 - comm.rank, "x")
                with pytest.raises(RuntimeError):
                    coll.recv(1 - comm.rank)
            finally:
                sched.close()
            return True

        assert all(run_threaded(2, worker))

    def test_byte_accounting_folds_into_base(self):
        def worker(comm):
            sched = CommScheduler(comm)
            try:
                coll = SchedComm(sched)
                coll.allgather(np.zeros(100))
                sched.flush()
            finally:
                sched.close()
            return comm.bytes_sent

        assert all(b > 0 for b in run_threaded(2, worker))


class TestFaultComposition:
    def test_scheduler_over_fault_injector(self):
        """Channels ride above the injector's sequence envelopes: drops
        are retransmitted and delays reordered before the demultiplexer
        sees anything."""
        plan = FaultPlan(
            seed=7, drop_prob=0.2, delay_prob=0.5, delay_s=0.002,
            reorder_prob=0.3, reorder_s=0.005, recv_deadline=20.0,
        )

        def worker(comm):
            sched = CommScheduler(comm)
            try:
                handles = [
                    sched.submit(
                        lambda c, i=i: c.allgather((c.rank, i)),
                        priority=float(-i),
                        label=f"g{i}",
                    )
                    for i in range(5)
                ]
                return [h.wait(30) for h in handles]
            finally:
                sched.close()

        outs = run_threaded_with_faults(3, worker, plan)
        for results in outs:
            for i, res in enumerate(results):
                assert res == [(0, i), (1, i), (2, i)]
