"""Unit tests for repro.utils."""

import numpy as np
import pytest

from repro.utils import (
    GB,
    MB,
    Gbps,
    Table,
    bytes_to_mb,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    fmt_bytes,
    fmt_duration,
    new_rng,
    spawn_rngs,
)


class TestUnits:
    def test_gbps_conversion(self):
        # 100 Gbps InfiniBand = 12.5 GB/s.
        assert Gbps(100) == pytest.approx(12.5e9)

    def test_bytes_to_mb_roundtrip(self):
        assert bytes_to_mb(252.5 * MB) == pytest.approx(252.5)

    def test_fmt_bytes_scales(self):
        assert fmt_bytes(252.5 * MB) == "252.5 MB"
        assert fmt_bytes(3.2 * GB) == "3.2 GB"
        assert fmt_bytes(10) == "10 B"
        assert fmt_bytes(-2 * MB).startswith("-")

    def test_fmt_duration_scales(self):
        assert fmt_duration(1.5) == "1.500 s"
        assert "ms" in fmt_duration(0.012)
        assert "us" in fmt_duration(1.2e-5)
        assert "ns" in fmt_duration(5e-8)


class TestRng:
    def test_new_rng_deterministic(self):
        a = new_rng(7).random(5)
        b = new_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.random(4) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_rngs_reproducible(self):
        a = [r.random(3) for r in spawn_rngs(42, 2)]
        b = [r.random(3) for r in spawn_rngs(42, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_rngs_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTable:
    def test_render_alignment(self):
        t = Table(["model", "size"])
        t.add_row(["LM", 3186.5])
        t.add_row(["BERT-base", 417.7])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("model")
        assert "-+-" in lines[1]
        assert "3186" in out and "417.7" in out

    def test_row_width_mismatch(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_title_prepended(self):
        t = Table(["x"], title="Table 1")
        t.add_row([1])
        assert t.render().splitlines()[0] == "Table 1"


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in(self):
        assert check_in("mode", "a", {"a", "b"}) == "a"
        with pytest.raises(ValueError):
            check_in("mode", "c", {"a", "b"})


class TestPlot:
    def test_line_chart_renders_all_series(self):
        from repro.utils.plot import line_chart

        out = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5)
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_line_chart_flat_series(self):
        from repro.utils.plot import line_chart

        out = line_chart({"flat": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert "*" in out

    def test_line_chart_validation(self):
        from repro.utils.plot import line_chart

        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"x": []})
        with pytest.raises(ValueError):
            line_chart({"x": [1]}, width=0)

    def test_bar_chart(self):
        from repro.utils.plot import bar_chart

        out = bar_chart({"EmbRace": 100.0, "Baseline": 50.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert "100" in lines[0]

    def test_bar_chart_validation(self):
        from repro.utils.plot import bar_chart

        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_bar_chart_zero_peak(self):
        from repro.utils.plot import bar_chart

        out = bar_chart({"x": 0.0})
        assert "#" not in out
