"""Tests for the extended collective algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_threaded
from repro.comm.algorithms import (
    alltoallv,
    gather,
    hierarchical_allreduce,
    reduce_scatter,
    scatter,
    tree_allreduce,
)


def rank_data(rank, n=12):
    return (np.arange(n, dtype=float) + 1) * (rank + 1)


class TestReduceScatter:
    @pytest.mark.parametrize("world", [1, 2, 3, 4])
    def test_chunks_sum(self, world):
        def fn(comm):
            return reduce_scatter(comm, rank_data(comm.rank))

        results = run_threaded(world, fn)
        full = sum(rank_data(r) for r in range(world))
        chunks = np.array_split(full, world)
        for rank, got in enumerate(results):
            np.testing.assert_allclose(got, chunks[rank])


class TestTreeAllreduce:
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5, 6, 8])
    def test_matches_sum(self, world):
        def fn(comm):
            return tree_allreduce(comm, rank_data(comm.rank))

        expected = sum(rank_data(r) for r in range(world))
        for got in run_threaded(world, fn):
            np.testing.assert_allclose(got, expected)

    @given(world=st.integers(1, 6), n=st.integers(1, 30), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_random(self, world, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(world, n))

        def fn(comm):
            return tree_allreduce(comm, data[comm.rank])

        for got in run_threaded(world, fn):
            np.testing.assert_allclose(got, data.sum(axis=0), atol=1e-9)


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize("nodes,gpus", [(2, 2), (2, 3), (3, 2), (1, 4), (4, 1)])
    def test_matches_flat_ring(self, nodes, gpus):
        world = nodes * gpus

        def fn(comm):
            return hierarchical_allreduce(comm, rank_data(comm.rank, 17), gpus)

        expected = sum(rank_data(r, 17) for r in range(world))
        for got in run_threaded(world, fn):
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_world_divisibility_enforced(self):
        def fn(comm):
            with pytest.raises(ValueError):
                hierarchical_allreduce(comm, np.ones(4), gpus_per_node=2)
            return True

        assert all(run_threaded(3, fn))

    def test_preserves_shape(self):
        def fn(comm):
            return hierarchical_allreduce(comm, np.ones((3, 5)), 2)

        for got in run_threaded(4, fn):
            assert got.shape == (3, 5)
            np.testing.assert_allclose(got, 4.0)


class TestAlltoallv:
    def test_variable_block_sizes(self):
        world = 3

        def fn(comm):
            blocks = [
                np.full(comm.rank + dst + 1, 10 * comm.rank + dst, dtype=float)
                for dst in range(world)
            ]
            return alltoallv(comm, blocks)

        results = run_threaded(world, fn)
        for rank, received in enumerate(results):
            for src, block in enumerate(received):
                assert len(block) == src + rank + 1
                assert np.all(block == 10 * src + rank)

    def test_block_count_validated(self):
        def fn(comm):
            with pytest.raises(ValueError):
                alltoallv(comm, [np.ones(1)])
            return True

        assert all(run_threaded(2, fn))


class TestRootedCollectives:
    @pytest.mark.parametrize("root", [0, 1])
    def test_gather(self, root):
        def fn(comm, root):
            return gather(comm, f"r{comm.rank}", root=root)

        results = run_threaded(3, fn, root)
        for rank, got in enumerate(results):
            if rank == root:
                assert got == ["r0", "r1", "r2"]
            else:
                assert got is None

    @pytest.mark.parametrize("root", [0, 2])
    def test_scatter(self, root):
        def fn(comm, root):
            objs = [f"obj{i}" for i in range(comm.world_size)] if comm.rank == root else None
            return scatter(comm, objs, root=root)

        results = run_threaded(3, fn, root)
        assert results == ["obj0", "obj1", "obj2"]

    def test_scatter_validates_root_payload(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    scatter(comm, [1], root=0)
                # Unblock peers after the failure.
                for dst in range(1, comm.world_size):
                    comm.send(dst, "recover")
                return True
            return comm.recv(0) == "recover"

        assert all(run_threaded(2, fn))

    def test_gather_scatter_roundtrip(self):
        def fn(comm):
            gathered = gather(comm, comm.rank * 2, root=0)
            doubled = [x + 1 for x in gathered] if comm.rank == 0 else None
            return scatter(comm, doubled, root=0)

        assert run_threaded(3, fn) == [1, 3, 5]
