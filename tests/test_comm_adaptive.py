"""Adaptive sparse collectives: bit-identity, dense switching, arena.

Covers ISSUE 7's satellite matrix:

* adaptive sparse allreduce bit-identical to
  ``allreduce_sparse_via_allgather`` across thread / queue / shm;
* densities on both sides of the ``dense_switch`` threshold (the
  switched path is index-exact and value-``allclose``, like
  ``coalesce``);
* world sizes 1 / 2 / 4 plus the non-power-of-two fallback (3);
* drops + delays from a seeded :class:`~repro.faults.plan.FaultPlan`;
* arena starvation: an arena smaller than the payload falls back to
  plain allocation with a counter bump, never a crash;
* wire accounting: ``bytes_sent`` equals the obs ``wire_bytes.*`` sum
  on both sparse and densified hops, and densified hops actually
  change the on-wire byte count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    BufferArena,
    allreduce_sparse_adaptive,
    allreduce_sparse_via_allgather,
    alltoall_column_shards,
    column_slices,
    open_group,
    run_threaded,
)
from repro.faults import run_threaded_with_faults
from repro.faults.plan import FaultPlan
from repro.obs import SpanRecorder
from repro.obs.merge import install_recorder
from repro.tensors import SparseRows

NUM_ROWS = 64
DIM = 8

FAULT_PLAN = dict(
    seed=11,
    drop_prob=0.08,
    delay_prob=0.15,
    delay_s=0.003,
    recv_deadline=30.0,
)


def _grad(rank: int, nnz: int = 24, num_rows: int = NUM_ROWS) -> SparseRows:
    rng = np.random.default_rng(100 + rank)
    idx = rng.integers(0, num_rows, nnz).astype(np.int64)
    vals = rng.standard_normal((nnz, DIM))
    return SparseRows(idx, vals, num_rows, coalesced=False)


# Module-level so the process backend can pickle them.
def run_both(comm, dense_switch, nnz=24):
    g = _grad(comm.rank, nnz=nnz)
    ref = allreduce_sparse_via_allgather(comm, g)
    ada = allreduce_sparse_adaptive(comm, g, dense_switch=dense_switch)
    return ref, ada


def run_adaptive(comm, dense_switch, nnz=24):
    return allreduce_sparse_adaptive(
        comm, _grad(comm.rank, nnz=nnz), dense_switch=dense_switch
    )


def run_shard(comm, dense_switch, nnz=24):
    return alltoall_column_shards(
        comm, _grad(comm.rank, nnz=nnz), dense_switch=dense_switch
    )


def run_accounting(comm, dense_switch):
    """Adaptive allreduce under a recorder; returns (bytes_sent, counters)."""
    recorder = SpanRecorder(rank=comm.rank)
    install_recorder(comm, recorder)
    before = comm.bytes_sent
    allreduce_sparse_adaptive(
        comm, _grad(comm.rank), dense_switch=dense_switch
    )
    return comm.bytes_sent - before, dict(recorder.counters)


class TestBitIdentity:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_reference_thread(self, world):
        for ref, ada in run_threaded(world, run_both, 1.0):
            assert np.array_equal(ref.indices, ada.indices)
            assert np.array_equal(ref.values, ada.values)

    def test_non_power_of_two_falls_back(self):
        # World 3 routes through the ring-allgather reference path —
        # still bit-identical, whatever the threshold.
        for ref, ada in run_threaded(3, run_both, 0.0):
            assert np.array_equal(ref.indices, ada.indices)
            assert np.array_equal(ref.values, ada.values)

    def test_below_threshold_stays_exact(self):
        # nnz=4 over 64 rows never reaches density 0.9: no dense switch,
        # so the recursive-doubling path must stay bit-exact.
        for ref, ada in run_threaded(4, run_both, 0.9, 4):
            assert np.array_equal(ref.indices, ada.indices)
            assert np.array_equal(ref.values, ada.values)

    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_matches_thread_across_transports(self, transport):
        reference = run_threaded(4, run_adaptive, 1.0)
        with open_group(4, backend="process", transport=transport) as group:
            got = group.run(run_adaptive, 1.0)
        for ref, g in zip(reference, got):
            assert np.array_equal(ref.indices, g.indices)
            assert np.array_equal(ref.values, g.values)


class TestDenseSwitch:
    @pytest.mark.parametrize("dense_switch", [0.0, 0.3])
    def test_switched_path_allclose(self, dense_switch):
        for ref, ada in run_threaded(4, run_both, dense_switch):
            assert np.array_equal(ref.indices, ada.indices)  # presence exact
            assert np.allclose(ref.values, ada.values)

    @pytest.mark.parametrize("dense_switch", [0.0, 1.0])
    def test_alltoall_dense_switch(self, dense_switch):
        full = run_threaded(4, run_adaptive, 1.0)
        shards = run_threaded(4, run_shard, dense_switch)
        for rank, shard in enumerate(shards):
            s = column_slices(DIM, 4)[rank]
            assert np.array_equal(shard.indices, full[rank].indices)
            if dense_switch == 1.0:
                assert np.array_equal(shard.values, full[rank].values[:, s])
            else:
                assert np.allclose(shard.values, full[rank].values[:, s])

    def test_switch_changes_wire_bytes(self):
        sparse_bytes = run_threaded(2, run_accounting, 1.0)
        dense_bytes = run_threaded(2, run_accounting, 0.0)
        # Densified hops ship (num_rows, dim) accumulator + bool mask
        # instead of the COO parts + union — different byte counts.
        assert sparse_bytes[0][0] != dense_bytes[0][0]
        expected_dense = NUM_ROWS * DIM * 8 + NUM_ROWS + 8  # acc + mask + tag
        assert dense_bytes[0][0] == expected_dense


class TestWireAccounting:
    @pytest.mark.parametrize("dense_switch", [1.0, 0.0])
    def test_obs_matches_payload_nbytes(self, dense_switch):
        # Satellite 1: the wire-bytes-by-dtype counters and bytes_sent
        # must agree on the actual on-wire representation of every hop,
        # sparse or densified.
        for sent, counters in run_threaded(4, run_accounting, dense_switch):
            wire = sum(
                v for k, v in counters.items() if k.startswith("wire_bytes.")
            )
            assert wire == sent
        if dense_switch == 0.0:
            # Densified hops are visible as bool-mask traffic.
            _, counters = run_threaded(2, run_accounting, 0.0)[0]
            assert counters.get("wire_bytes.bool", 0) > 0


class TestFaulted:
    def test_adaptive_under_drops_and_delays(self):
        reference = run_threaded(4, run_adaptive, 1.0)
        got = run_threaded_with_faults(
            4, run_adaptive, FaultPlan(**FAULT_PLAN), 1.0
        )
        for ref, g in zip(reference, got):
            assert np.array_equal(ref.indices, g.indices)
            assert np.array_equal(ref.values, g.values)

    def test_shard_fast_path_under_faults(self):
        reference = run_threaded(4, run_shard, 1.0)
        got = run_threaded_with_faults(
            4, run_shard, FaultPlan(**FAULT_PLAN), 1.0
        )
        for ref, g in zip(reference, got):
            assert np.array_equal(ref.indices, g.indices)
            assert np.array_equal(ref.values, g.values)


class TestArena:
    def test_recycles_buffers(self):
        arena = BufferArena()
        a = arena.take((128, 8), np.float64)
        arena.put(a)
        b = arena.take((128, 8), np.float64)

        def root(arr):
            while arr.base is not None:
                arr = arr.base
            return arr

        assert root(b) is root(a)  # same pooled buffer came back
        assert arena.counters()["arena.hits"] == 1
        assert arena.counters()["arena.misses"] == 1

    def test_starvation_falls_back_without_crash(self):
        # Capacity one page: the second concurrent take cannot be pooled.
        arena = BufferArena(capacity_bytes=4096)
        a = arena.take(1024, np.uint8)
        b = arena.take(1024, np.uint8)  # cap exhausted -> plain np.empty
        assert arena.counters()["arena.fallbacks"] == 1
        arena.put(a, b)  # putting a fallback back is a harmless no-op
        assert arena.counters()["arena.retained_bytes"] <= 4096

    def test_oversized_request_falls_back(self):
        arena = BufferArena()
        big = arena.take(arena.max_bytes + 1, np.uint8)
        assert big.nbytes == arena.max_bytes + 1
        assert arena.counters()["arena.fallbacks"] == 1

    def test_collectives_survive_starved_arena(self):
        # An arena far smaller than the payload: every take falls back,
        # results stay correct, fallback counter bumps, no crash.  The
        # purely-sparse lanes no longer need scratch at all, so the
        # dense-switched paths (which take accumulators and masks) are
        # the ones driven through the starved arena.
        arena = BufferArena(capacity_bytes=0)

        def run(comm):
            g = _grad(comm.rank)
            ref = allreduce_sparse_via_allgather(comm, g)
            ada = allreduce_sparse_adaptive(comm, g, dense_switch=0.1, arena=arena)
            shard = alltoall_column_shards(comm, g, dense_switch=0.1, arena=arena)
            return ref, ada, shard

        for rank, (ref, ada, shard) in enumerate(run_threaded(4, run)):
            assert np.array_equal(ref.indices, ada.indices)
            assert np.allclose(ref.values, ada.values, rtol=1e-6, atol=1e-9)
            s = column_slices(DIM, 4)[rank]
            assert np.allclose(shard.values, ref.values[:, s], rtol=1e-6, atol=1e-9)
        assert arena.counters()["arena.fallbacks"] > 0
        assert arena.counters()["arena.misses"] == 0
