"""Tests for multi-step pipelined simulation."""

import pytest

from repro.engine.trainer_sim import make_context
from repro.models import GNMT8, LM
from repro.sim import TaskGraph, execute
from repro.sim.pipeline import chain_steps, steady_state_step_time
from repro.strategies import ALL_STRATEGIES, EmbRace


@pytest.fixture(scope="module")
def ctx():
    return make_context(GNMT8, "rtx3090", 16)


class TestChainSteps:
    def test_task_count_scales(self, ctx):
        graph = EmbRace().build_step(ctx)
        chained = chain_steps(graph, 3)
        assert len(chained) == 3 * len(graph)

    def test_single_step_identical(self, ctx):
        graph = EmbRace().build_step(ctx)
        single = execute(graph).makespan
        chained = execute(chain_steps(graph, 1)).makespan
        assert chained == pytest.approx(single, rel=1e-12)

    def test_cross_step_ordering(self, ctx):
        """Step k+1's BP of a block never precedes step k's FP of it."""
        graph = EmbRace().build_step(ctx)
        trace = execute(chain_steps(graph, 2))
        for block in ctx.blocks:
            fp0 = trace.find(f"s0:fp:{block.name}")
            bp1 = trace.find(f"s1:bp:{block.name}")
            assert bp1.start >= fp0.end - 1e-12

    def test_validation(self, ctx):
        graph = EmbRace().build_step(ctx)
        with pytest.raises(ValueError):
            chain_steps(graph, 0)
        with pytest.raises(ValueError):
            steady_state_step_time(graph, n_steps=1)

    def test_orphan_bp_rejected(self):
        """A bp:<block> without fp:<block> cannot be wired across steps;
        chain_steps must say so instead of silently dropping the dep."""
        g = TaskGraph()
        g.add_task("bp:x", 1.0, "compute")
        g.add_task("fp:x", 1.0, "compute", deps=("bp:x",))
        g.add_task("bp:ghost", 1.0, "compute")
        with pytest.raises(ValueError, match="ghost"):
            chain_steps(g, 2)

    def test_synthetic_graph_pipelines(self):
        """Comm of step k overlaps compute of step k+1 once chained."""
        g = TaskGraph()
        g.add_task("bp:x", 1.0, "compute")
        g.add_task("comm:x", 2.0, "comm", kind="comm", deps=("bp:x",))
        g.add_task("fp:x", 1.0, "compute", deps=("bp:x",))
        # Single step: compute 2.0 serial, comm finishes at 3.0.
        assert execute(g).makespan == pytest.approx(3.0)
        # Two steps: step 1's compute hides step 0's trailing comm.
        per_step, _ = steady_state_step_time(g, n_steps=3)
        assert per_step < 3.0


class TestSteadyState:
    @pytest.mark.parametrize("strategy", ["EmbRace", "Horovod-AllGather"])
    def test_steady_state_not_slower_than_single(self, ctx, strategy):
        graph = ALL_STRATEGIES[strategy]().build_step(ctx)
        single = execute(graph).makespan
        steady, _ = steady_state_step_time(graph, n_steps=4)
        assert steady <= single + 1e-9

    def test_embrace_benefits_from_pipelining(self):
        """EmbRace's delayed gradients trail into the next BP, so its
        steady-state step is at least as good as its single-step view."""
        ctx = make_context(LM, "rtx3090", 16)
        graph = EmbRace().build_step(ctx)
        single = execute(graph).makespan
        steady, _ = steady_state_step_time(graph, n_steps=4)
        assert steady <= single + 1e-9

    def test_embrace_still_fastest_in_steady_state(self, ctx):
        times = {}
        for name in ("EmbRace", "Horovod-AllGather", "Horovod-AllReduce", "Parallax"):
            graph = ALL_STRATEGIES[name]().build_step(ctx)
            times[name], _ = steady_state_step_time(graph, n_steps=3)
        assert times["EmbRace"] == min(times.values())
