"""open_group / RunConfig: the redesigned front door and its shims."""

import warnings

import numpy as np
import pytest

from repro.comm import ProcessGroup, ThreadGroup, open_group
from repro.engine.run import RunConfig, RunResult, real_strategy, run, sim_strategy
from repro.engine.trainer_real import RealTrainer
from repro.faults import FaultPlan
from repro.models import GNMT8, LM


def _sum_ranks(comm):
    return comm.allreduce(np.array([float(comm.rank)]))


class TestOpenGroup:
    def test_thread_group_runs(self):
        with open_group(3) as group:
            outs = group.run(_sum_ranks)
        assert [float(o[0]) for o in outs] == [3.0, 3.0, 3.0]

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            open_group(0)
        with pytest.raises(ValueError):
            open_group(2, backend="mpi")
        with pytest.raises(ValueError):
            open_group(2, transport="rdma")
        with pytest.raises(ValueError):
            open_group(2, timeout=-1.0)

    def test_timeout_defaults_track_fault_plan(self):
        plan = FaultPlan(seed=0, recv_deadline=3.5)
        assert open_group(2, faults=plan).timeout == 3.5
        assert open_group(2, faults=plan, timeout=9.0).timeout == 9.0

    def test_faults_wrap_and_still_compute_correctly(self):
        plan = FaultPlan(seed=1, drop_prob=0.3, recv_deadline=10.0)

        def fn(comm):
            out = None
            for _ in range(10):
                out = comm.allreduce(np.arange(4.0) * (comm.rank + 1))
            return out, comm.stats.retransmits

        with open_group(2, faults=plan) as group:
            results = group.run(fn)
        expected = np.arange(4.0) * 3
        assert all(np.allclose(data, expected) for data, _ in results)
        assert sum(r for _, r in results) > 0  # the injector actually fired

    @pytest.mark.slow
    def test_process_backend_parity(self):
        with open_group(2, backend="process") as group:
            outs = group.run(_sum_ranks)
        assert [float(o[0]) for o in outs] == [1.0, 1.0]


class TestDeprecatedEntryPoints:
    def test_thread_group_ctor_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="open_group"):
            group = ThreadGroup(2)
        assert group.world_size == 2
        assert group.communicator(1).rank == 1

    def test_process_group_ctor_warns(self):
        with pytest.warns(DeprecationWarning, match="open_group"):
            ProcessGroup(2)

    def test_real_trainer_backend_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="open_group"):
            RealTrainer(LM.tiny(), world_size=2, steps=1, backend="thread")

    def test_new_entry_points_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with open_group(2) as group:
                group.run(_sum_ranks)
            RealTrainer(LM.tiny(), world_size=2, steps=1)

    def test_trainer_dispatches_through_group(self):
        with open_group(2, trace=True) as group:
            result = RealTrainer(
                LM.tiny(), world_size=2, steps=2, group=group
            ).train()
        assert len(result.losses) == 2
        assert result.trace is not None
        assert result.trace.computation_stall() >= 0.0

    def test_trainer_rejects_mismatched_group(self):
        with open_group(2) as group:
            with pytest.raises(ValueError, match="world_size"):
                RealTrainer(LM.tiny(), world_size=4, group=group)


class TestRunAPI:
    def test_strategy_aliases(self):
        assert real_strategy("embrace") == "embrace"
        assert real_strategy("Horovod-AllGather") == "allgather"
        with pytest.raises(ValueError, match="real-execution"):
            real_strategy("BytePS")
        assert sim_strategy("allreduce").name == "Horovod-AllReduce"
        with pytest.raises(ValueError, match="unknown strategy"):
            sim_strategy("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RunConfig(model=GNMT8, mode="dream")
        with pytest.raises(ValueError):
            RunConfig(model=GNMT8, steps=0)

    def test_sim_and_real_share_the_result_protocol(self):
        cfg = RunConfig(model=GNMT8, mode="sim", strategy="embrace", world_size=4)
        sim = run(cfg)
        real = run(RunConfig(
            model=LM.tiny(), mode="real", strategy="EmbRace",
            world_size=2, steps=2, trace=True,
        ))
        for res in (sim, real):
            assert isinstance(res, RunResult)
            assert res.wall_time > 0.0
            assert res.strategy  # normalized, mode-appropriate spelling
            assert res.computation_stall() >= 0.0  # one code path, both modes
        assert sim.trace.resources() == ["comm", "compute"]
        assert "compute:0" in real.trace.resources()
        wire = [v for k, v in real.metrics.items()
                if k.startswith("counter.wire_bytes.")]
        assert wire and sum(wire) > 0.0

    def test_untraced_real_run_refuses_stall(self):
        res = run(RunConfig(model=LM.tiny(), mode="real", steps=1))
        assert res.trace is None
        with pytest.raises(ValueError, match="not traced"):
            res.computation_stall()

    def test_real_run_under_faults(self):
        plan = FaultPlan(seed=3, delay_prob=0.2, delay_s=0.001, recv_deadline=10.0)
        res = run(RunConfig(
            model=LM.tiny(), mode="real", steps=2, trace=True, faults=plan,
        ))
        assert len(res.raw.losses) == 2
        assert res.metrics.get("counter.faults.sent", 0.0) > 0.0
