"""Tests for the experiment modules (fast ones run fully; heavy ones
are covered by the benchmark suite and smoke-tested here)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    fig1,
    fig4,
    fig6,
    table1,
    table2,
    table3,
)
from repro.experiments.base import ExperimentResult as BaseResult
from repro.experiments.harness import ALL_EXPERIMENTS, render_markdown
from repro.experiments.paper_values import (
    FIG7_SPEEDUPS,
    MODEL_SPARSITY,
    TABLE1,
    TABLE3,
)


class TestExperimentResult:
    def test_render_structure(self):
        r = ExperimentResult(
            exp_id="Table X", title="demo", tables=["a | b"], findings=["it holds"]
        )
        out = r.render()
        assert out.startswith("## Table X: demo")
        assert "```" in out and "- it holds" in out

    def test_render_without_findings(self):
        r = ExperimentResult(exp_id="F", title="t")
        assert "Findings" not in r.render()


class TestTable1:
    def test_within_tolerance(self):
        r = table1.run()
        for name, (p_total, p_emb, _) in TABLE1.items():
            assert r.data[name]["total_mb"] == pytest.approx(p_total, rel=0.05)
            assert r.data[name]["embedding_mb"] == pytest.approx(p_emb, rel=0.05)

    def test_findings_positive(self):
        r = table1.run()
        assert any("True" in f for f in r.findings)


class TestTable2:
    def test_alltoall_dominates_symbolically(self):
        r = table2.run()
        for costs in r.data.values():
            assert costs["AlltoAll"] <= costs["AllReduce"] + 1e-15
            assert costs["AlltoAll"] <= costs["PS"] + 1e-15

    def test_all_model_sparsities_present(self):
        r = table2.run()
        assert set(r.data) == set(MODEL_SPARSITY)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(n_steps=4)

    def test_monotone_reductions(self, result):
        for d in result.data.values():
            assert d["original_mb"] > d["coalesced_mb"] > d["prior_mb"] > 0

    def test_within_2x_of_paper(self, result):
        for name, (p_orig, p_coal, p_prior) in TABLE3.items():
            d = result.data[name]
            assert 0.5 < d["coalesced_mb"] / p_coal < 2.0, name
            assert 0.4 < d["prior_mb"] / p_prior < 2.5, name

    def test_bert_largest_coalescing_gain(self, result):
        gains = {n: d["coalesce_reduction"] for n, d in result.data.items()}
        assert max(gains, key=gains.get) == "BERT-base"
        assert min(gains, key=gains.get) == "LM"


class TestFig1:
    def test_byte_asymmetry(self):
        r = fig1.run()
        assert r.data["allreduce_bytes"] > r.data["allgather_bytes"] > 0


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run()

    def test_crossover_band(self, result):
        assert 0.30 <= result.data["crossover"] <= 0.55

    def test_4x1_alltoall_everywhere(self, result):
        sweep = result.data["sweep_b"]
        others = np.vstack(
            [sweep[s] for s in ("allreduce", "allgather", "omnireduce", "ps")]
        )
        assert np.all(sweep["alltoall"] <= others.min(axis=0) + 1e-12)


class TestFig6:
    def test_monotone_improvement(self):
        r = fig6.run(world_size=8)
        t = r.data
        assert t["(a) Default (FIFO)"] >= t["(b) Horizontal"] >= t["(c) 2D Scheduling"]


class TestHarness:
    def test_registry_covers_all_paper_artifacts(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3",
            "fig1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        }

    def test_render_markdown(self):
        results = [BaseResult(exp_id="Fig 0", title="demo", tables=["x"])]
        md = render_markdown(results)
        assert md.startswith("# EXPERIMENTS")
        assert "## Fig 0: demo" in md

    def test_fig7_paper_bands_complete(self):
        # One band per (cluster, model).
        assert len(FIG7_SPEEDUPS) == 8
        assert all(lo <= hi for lo, hi in FIG7_SPEEDUPS.values())
