"""Skew-aware hybrid placement: the hot/cold split never changes math.

The contract under test: a :class:`~repro.placement.PlacementPlan` moves
hot-row gradients onto the replicated dense lane and hot-row serves onto
the local replica, and at **any** hot fraction — including live
re-partitioning mid-training — losses, optimizer state and served rows
are bit-identical to the uniform column-sharded path.
"""

import warnings

import numpy as np
import pytest

from repro.comm import SchedKnobs, open_group
from repro.comm.sparse import allreduce_hot_rows, alltoall_column_shards
from repro.engine.trainer_real import RealTrainer
from repro.faults import FaultPlan
from repro.models import GNMT8, build_model
from repro.obs import TraceConfig
from repro.placement import (
    DriftMonitor,
    PlacementPlan,
    TablePlacement,
    as_placement,
    learn_hot_ids,
    uniform_column_sharding,
)
from repro.serve import ServeConfig, ShardedEmbeddingService, offline_reference
from repro.tensors import SparseRows


def gnmt_tables():
    """{name: vocab} of GNMT8.tiny's embedding tables."""
    model = build_model(GNMT8.tiny(), rng=np.random.default_rng(0))
    return {n: t.num_embeddings for n, t in model.embedding_tables().items()}


class TestLearnHotIds:
    def test_top_rows_sorted_unique(self):
        counts = np.array([5, 0, 9, 9, 1])
        assert learn_hot_ids(counts, 2).tolist() == [2, 3]
        # Ties break toward the lower row id.
        assert learn_hot_ids(counts, 3).tolist() == [0, 2, 3]

    def test_zero_count_rows_never_qualify(self):
        counts = np.array([0, 3, 0])
        assert learn_hot_ids(counts, 10).tolist() == [1]

    def test_non_positive_n_hot_is_empty(self):
        assert learn_hot_ids(np.array([1, 2]), 0).size == 0


class TestTablePlacement:
    def test_validation(self):
        with pytest.raises(ValueError, match="negative"):
            TablePlacement(table="t", hot_ids=(-1, 2))
        with pytest.raises(ValueError, match="sorted and unique"):
            TablePlacement(table="t", hot_ids=(3, 1))
        with pytest.raises(ValueError, match="sorted and unique"):
            TablePlacement(table="t", hot_ids=(1, 1))

    def test_mask_and_split(self):
        p = TablePlacement(table="t", hot_ids=(1, 4))
        ids = np.array([0, 4, 1, 4, 3])
        assert p.hot_mask(ids).tolist() == [False, True, True, True, False]
        hot, cold = p.split_ids(ids)
        assert hot.tolist() == [4, 1, 4] and cold.tolist() == [0, 3]
        assert not p.is_uniform and p.n_hot == 2
        assert TablePlacement(table="t").is_uniform


class TestPlacementPlan:
    def test_roundtrip_and_lookup(self, tmp_path):
        plan = PlacementPlan.from_hot_ids({"b": [3, 1], "a": [7]})
        assert plan.for_table("b").hot_ids == (1, 3)
        assert plan.for_table("unknown").is_uniform
        assert plan.hot_counts() == {"a": 1, "b": 2}
        path = tmp_path / "plan.json"
        plan.save(str(path))
        again = PlacementPlan.load(str(path))
        assert again == plan
        assert "hybrid placement" in plan.summary()
        assert "uniform" in uniform_column_sharding().summary()

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PlacementPlan(
                tables=(TablePlacement(table="t"), TablePlacement(table="t"))
            )

    def test_as_placement_forms(self):
        assert as_placement(None).is_uniform
        plan = PlacementPlan.from_hot_ids({"t": [2]})
        assert as_placement(plan) is plan
        assert as_placement({"t": [5, 2]}).for_table("t").hot_ids == (2, 5)
        single = TablePlacement(table="t", hot_ids=(1,))
        assert as_placement(single).for_table("t") == single
        with pytest.raises(TypeError):
            as_placement(42)

    def test_drift_monitor(self):
        mon = DriftMonitor(hot_fraction=0.5, repartition_interval=3)
        assert not mon.due(0) and not mon.due(2)
        assert mon.due(3) and mon.due(6)
        assert mon.target_n_hot(vocab=10) == 5
        keep = DriftMonitor(repartition_interval=3)
        assert keep.target_n_hot(vocab=10, current_n_hot=4) == 4
        new = mon.learn({"t": np.array([9, 1, 5, 0])}, vocab={"t": 4})
        assert new["t"].tolist() == [0, 2]
        assert mon.repartitions == 1


class TestTraceLearning:
    def _traced_bundle(self):
        cfg = ServeConfig(
            vocab=256, dim=8, world_size=2, zipf_exponent=1.4,
            clients=1, requests_per_client=5, train_steps=4, seed=3,
        )
        with open_group(2, backend="thread", trace=TraceConfig(row_topk=64)) as g:
            report = ShardedEmbeddingService(cfg, group=g).run()
        return report.trace

    def test_row_cdf_and_from_trace(self):
        bundle = self._traced_bundle()
        ids, counts, cov = bundle.row_cdf("embedding")
        assert len(ids) == len(counts) == len(cov) > 0
        assert counts.tolist() == sorted(counts.tolist(), reverse=True)
        assert np.all(np.diff(cov) >= 0) and cov[-1] <= 1.0 + 1e-12
        plan = PlacementPlan.from_trace(bundle, hot_fraction=0.05, vocab=256)
        assert plan.source == "trace"
        table = plan.for_table("embedding")
        assert table.n_hot == round(0.05 * 256)
        # The learned set is the head of the cdf ordering.
        assert set(table.hot_ids) == set(ids[: table.n_hot].tolist())
        missing = bundle.row_cdf("no_such_table")
        assert all(a.size == 0 for a in missing)

    def test_from_trace_validates_fraction(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            PlacementPlan.from_trace(None, hot_fraction=1.5)

    def test_wire_bytes_by_table(self):
        bundle = self._traced_bundle()
        per_table = bundle.wire_bytes_by_table()
        assert per_table.get("embedding", 0.0) > 0.0


def _hot_lane_worker(comm, payload):
    hot_ids, parts = payload
    return allreduce_hot_rows(comm, hot_ids, parts[comm.rank], table="t")


class TestHotLaneBitIdentity:
    """allreduce_hot_rows == the AlltoAll's canonical rank-ordered sum."""

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_matches_merge_coalesced_reference(self, world):
        vocab, dim = 96, 12
        rng = np.random.default_rng(world)
        hot_ids = np.sort(rng.choice(vocab, size=17, replace=False))
        parts = []
        for _ in range(world):
            ids = rng.choice(hot_ids, size=11, replace=True)
            parts.append(
                SparseRows(ids, rng.normal(size=(len(ids), dim)), vocab).coalesce()
            )
        expected = SparseRows.merge_coalesced(
            [(p.indices, p.values) for p in parts], vocab, dim
        )
        with open_group(world, backend="thread") as g:
            outs = g.run(_hot_lane_worker, (hot_ids, parts))
        for out in outs:
            got = out.coalesce()
            np.testing.assert_array_equal(got.indices, expected.indices)
            np.testing.assert_array_equal(got.values, expected.values)

    def test_rejects_non_hot_rows(self):
        grad = SparseRows(np.array([5]), np.ones((1, 4)), 10)
        with open_group(2, backend="thread") as g:
            with pytest.raises(Exception, match="non-hot"):
                g.run(
                    lambda comm: allreduce_hot_rows(
                        comm, np.array([1, 2]), grad
                    )
                )


def _trainer_placement(fraction):
    """A static plan covering ``fraction`` of each GNMT8.tiny table."""
    return {
        name: np.arange(max(1, round(fraction * vocab)))
        for name, vocab in gnmt_tables().items()
    }


class TestTrainerBitIdentity:
    KW = dict(strategy="embrace", world_size=2, steps=3, seed=5)

    def _assert_same(self, a, b):
        assert a.losses == b.losses
        for key in a.state:
            np.testing.assert_array_equal(a.state[key], b.state[key], err_msg=key)

    @pytest.mark.parametrize("fraction", [0.0, 0.01, 0.1, 1.0])
    def test_static_placement_matches_uniform(self, fraction):
        base = RealTrainer(GNMT8.tiny(), **self.KW).train()
        placement = _trainer_placement(fraction) if fraction else None
        placed = RealTrainer(
            GNMT8.tiny(), placement=placement, **self.KW
        ).train()
        self._assert_same(base, placed)

    def test_placement_on_process_shm_backend(self):
        base = RealTrainer(GNMT8.tiny(), **self.KW).train()
        with open_group(2, backend="process", transport="shm") as g:
            placed = RealTrainer(
                GNMT8.tiny(), placement=_trainer_placement(0.1),
                group=g, **self.KW,
            ).train()
        self._assert_same(base, placed)

    def test_placement_under_faults(self):
        plan = FaultPlan(
            seed=3, delay_prob=0.3, delay_s=0.002, drop_prob=0.1,
            reorder_prob=0.2, reorder_s=0.003, recv_deadline=30.0,
        )
        base = RealTrainer(GNMT8.tiny(), overlap=False, **self.KW).train()
        placed = RealTrainer(
            GNMT8.tiny(), placement=_trainer_placement(0.1),
            fault_plan=plan, overlap=True, **self.KW,
        ).train()
        self._assert_same(base, placed)

    def test_live_repartition_matches_uniform(self):
        base = RealTrainer(GNMT8.tiny(), world_size=2, strategy="embrace",
                           steps=6, seed=5).train()
        dynamic = RealTrainer(
            GNMT8.tiny(), world_size=2, strategy="embrace", steps=6, seed=5,
            knobs={"hot_fraction": 0.1, "repartition_interval": 2},
        ).train()
        self._assert_same(base, dynamic)

    def test_crash_recovery_with_placement(self, tmp_path):
        kw = dict(strategy="embrace", world_size=2, steps=6, seed=5,
                  placement=_trainer_placement(0.1),
                  knobs={"hot_fraction": 0.1, "repartition_interval": 2})
        clean = RealTrainer(GNMT8.tiny(), **kw).train()
        out = RealTrainer(
            GNMT8.tiny(),
            fault_plan=FaultPlan(seed=5, crashes={1: 5}, recv_deadline=2.0),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            **kw,
        ).train_resilient()
        assert out.report.attempts == 2
        assert out.result.losses == clean.losses
        for key in clean.state:
            np.testing.assert_array_equal(
                out.result.state[key], clean.state[key], err_msg=key
            )


class TestServePlacement:
    BASE = dict(vocab=512, dim=16, world_size=4, zipf_exponent=1.3,
                clients=2, requests_per_client=10, train_steps=8, seed=7)

    def test_hot_serves_stay_bit_identical(self):
        cfg = ServeConfig(
            **self.BASE,
            placement={"embedding": range(16)},
            record_serve_results=True,
        )
        with open_group(4, backend="thread") as g:
            report = ShardedEmbeddingService(cfg, group=g).run()
        losses, _, snaps = offline_reference(cfg, snapshots=True)
        assert report.torn_batches == 0
        assert report.losses == losses
        hot = set(range(16))
        saw_hot = False
        for table, ids, version, values in report.serve_results:
            np.testing.assert_array_equal(values, snaps[version][table][ids])
            saw_hot |= any(int(i) in hot for i in ids)
        assert saw_hot  # Zipf head: the hot rows really were served

    def test_live_repartition_never_tears(self):
        cfg = ServeConfig(
            **self.BASE,
            placement={"embedding": range(8)},
            hot_fraction=0.05,
            repartition_interval=3,
            record_serve_results=True,
        )
        with open_group(4, backend="thread") as g:
            report = ShardedEmbeddingService(cfg, group=g).run()
        losses, finals, snaps = offline_reference(cfg, snapshots=True)
        assert report.repartitions >= 1
        assert report.torn_batches == 0
        assert report.losses == losses
        for table, ids, version, values in report.serve_results:
            np.testing.assert_array_equal(values, snaps[version][table][ids])
        for name, ref in finals.items():
            np.testing.assert_array_equal(report.final_tables[name], ref)


class TestDeprecatedShims:
    def test_alltoall_explicit_shards_warns(self):
        from repro.comm.sparse import column_slices

        def worker(comm):
            grad = SparseRows(np.array([1]), np.ones((1, 8)), 4)
            shards = column_slices(8, comm.world_size)
            alltoall_column_shards(comm, grad, shards=shards)

        # ``catch_warnings`` mutates process-global state, so per-rank
        # contexts in worker threads race; record from the main thread
        # around the whole group run instead.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with open_group(2, backend="thread") as g:
                g.run(worker)
        assert any("deprecated" in str(w.message) for w in caught)

    def test_alltoall_non_uniform_shards_rejected(self):
        def worker(comm):
            grad = SparseRows(np.array([1]), np.ones((1, 8)), 4)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    alltoall_column_shards(
                        comm, grad, shards=[slice(0, 1), slice(1, 8)]
                    )
                except ValueError as e:
                    return str(e)
            return None

        with open_group(2, backend="thread") as g:
            outs = g.run(worker)
        assert "non-uniform" in outs[0]

    def test_runtime_columns_kwarg_warns(self):
        from repro.comm.sparse import column_slices
        from repro.engine.embrace_runtime import EmbraceTableRuntime
        from repro.nn.embedding import Embedding

        def worker(comm):
            table = Embedding(16, 8, rng=np.random.default_rng(1), name="t")
            cols = column_slices(8, comm.world_size)[comm.rank]
            EmbraceTableRuntime(comm, table, columns=cols)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with open_group(2, backend="thread") as g:
                g.run(worker)
        assert any("deprecated" in str(w.message) for w in caught)

    def test_store_read_rows_columns_kwarg_warns(self):
        from repro.engine.embrace_runtime import EmbraceTableRuntime
        from repro.nn.embedding import Embedding
        from repro.serve.store import VersionedShardStore

        def worker(comm):
            table = Embedding(16, 8, rng=np.random.default_rng(1), name="t")
            store = VersionedShardStore(EmbraceTableRuntime(comm, table))
            store.read_rows(np.array([2]), columns=store.runtime.my_columns)
            wrong = slice(0, 1) if store.runtime.my_columns != slice(0, 1) else slice(1, 2)
            with pytest.raises(ValueError):
                store.read_rows(np.array([2]), columns=wrong)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with open_group(2, backend="thread") as g:
                g.run(worker)
        assert any("deprecated" in str(w.message) for w in caught)


class TestKnobsAndSearch:
    def test_knobs_roundtrip_with_placement_keys(self):
        k = SchedKnobs(hot_fraction=0.05, repartition_interval=8)
        assert SchedKnobs.from_dict(k.to_dict()) == k

    def test_old_knob_dicts_still_load(self):
        old = SchedKnobs().to_dict()
        del old["hot_fraction"], old["repartition_interval"]
        k = SchedKnobs.from_dict(old)
        assert k.hot_fraction == 0.0 and k.repartition_interval == 0

    def test_search_space_carries_placement_axes(self):
        from repro.tune import SearchSpace

        space = SearchSpace(
            chunk_elems=(1024,),
            hot_fraction=(0.0, 0.01),
            repartition_interval=(0, 8),
        )
        cands = space.candidates()
        fractions = {c.knobs.hot_fraction for c in cands}
        assert fractions == {0.0, 0.01}
        assert any("hot=0.01" in c.label() for c in cands)

    def test_hot_fraction_prices_into_prediction(self):
        from repro.tune import Candidate, predict_candidate
        from tests.test_tune import make_profile, make_workload

        workload = make_workload()
        table = workload.tables[0]
        import dataclasses

        hot_table = dataclasses.replace(
            table, vocab_rows=4096.0,
            hot_coverage=((0, 0.0), (41, 0.45), (409, 0.8), (4096, 1.0)),
        )
        workload = dataclasses.replace(workload, tables=(hot_table,))
        profile = make_profile()
        base = predict_candidate(
            profile, workload, Candidate(strategy="embrace"), n_steps=3
        )
        hot = predict_candidate(
            profile, workload,
            Candidate(strategy="embrace", knobs=SchedKnobs(hot_fraction=0.01)),
            n_steps=3,
        )
        assert hot.step_time_s != pytest.approx(base.step_time_s, rel=1e-9)
        repart = predict_candidate(
            profile, workload,
            Candidate(strategy="embrace", knobs=SchedKnobs(
                hot_fraction=0.01, repartition_interval=2)),
            n_steps=4,
        )
        assert repart.step_time_s > hot.step_time_s
