"""Cross-package integration tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_threaded
from repro.engine.checkpoint import load_checkpoint, save_checkpoint
from repro.engine.embrace_runtime import EmbraceTableRuntime
from repro.engine.step_simulator import simulate_step
from repro.engine.trainer_real import RealTrainer
from repro.engine.trainer_sim import make_context
from repro.models import GNMT8, LM, build_model
from repro.nn import Embedding
from repro.nn.parameter import Parameter
from repro.optim import EmbraceAdam
from repro.strategies import ALL_STRATEGIES
from repro.tensors import SparseRows


class TestEmbraceTableRuntime:
    """Direct tests of the reusable per-table runtime."""

    @staticmethod
    def _run(world, vocab=12, dim=6, steps=2, seed=0):
        def fn(comm):
            rng = np.random.default_rng(seed)
            table = Embedding(vocab, dim, rng=np.random.default_rng(seed))
            runtime = EmbraceTableRuntime(comm, table, lr=0.01)
            reference = Parameter(table.weight.data.copy(), sparse_grad=True)
            ref_opt = EmbraceAdam([reference], lr=0.01)
            for step in range(steps):
                # All ranks derive the *same* per-rank gradients.
                grads = [
                    SparseRows(
                        np.array([1, 3, 5 + r]),
                        np.random.default_rng(100 * step + r).normal(size=(3, dim)),
                        vocab,
                    )
                    for r in range(comm.world_size)
                ]
                ids = np.arange(vocab)
                runtime.apply_gradient(
                    grads[comm.rank], ids, ids, scale=1.0 / comm.world_size
                )
                # Fused reference: sum all ranks' grads (the canonical
                # rank-ordered merge the collectives produce), one update.
                cparts = [g.coalesce() for g in grads]
                total = SparseRows.merge_coalesced(
                    [(p.indices, p.values) for p in cparts],
                    vocab,
                    dim,
                    dtype=cparts[0].values.dtype,
                )
                reference.grad = total.scale(1.0 / comm.world_size)
                ref_opt.step()
                reference.zero_grad()
            return runtime.gather_full_table(), reference.data

        return run_threaded(world, fn)

    @pytest.mark.parametrize("world", [1, 2, 3])
    def test_matches_fused_reference(self, world):
        for assembled, reference in self._run(world):
            np.testing.assert_array_equal(assembled, reference)

    def test_refresh_rows_propagates_updates(self):
        def fn(comm):
            table = Embedding(10, 4, rng=np.random.default_rng(0))
            runtime = EmbraceTableRuntime(comm, table, lr=0.1)
            grad = SparseRows(np.array([2]), np.ones((1, 4)), 10)
            runtime.apply_gradient(grad, np.array([2]), np.array([2]), scale=0.5)
            runtime.refresh_rows(np.array([2]))
            return table.weight.data[2].copy()

        rows = run_threaded(2, fn)
        # Both replicas observe the same fresh full-dimension row.
        np.testing.assert_array_equal(rows[0], rows[1])


class TestCheckpointResume:
    def test_real_training_resumes_bit_exact(self, tmp_path):
        """Stop EmbRace training, checkpoint, resume: identical to an
        uninterrupted run (the synchronous-training recovery story)."""
        cfg = GNMT8.tiny()
        full = RealTrainer(cfg, strategy="allgather", world_size=2,
                           steps=6, seed=3).train()

        first = RealTrainer(cfg, strategy="allgather", world_size=2,
                            steps=3, seed=3).train()
        # Reload rank-0 state into a fresh model and continue manually:
        # equivalence of the optimizer-state checkpointing is covered in
        # test_extensions; here we check the state dict round-trips.
        model = build_model(cfg, rng=np.random.default_rng(99))
        path = str(tmp_path / "ck.npz")
        # Persist the mid-run state through the checkpoint format.
        proxy = build_model(cfg, rng=np.random.default_rng(98))
        proxy.load_state_dict(
            {k: v for k, v in first.state.items() if True}
        )
        save_checkpoint(path, proxy, step=3)
        assert load_checkpoint(path, model) == 3
        for key, value in first.state.items():
            got = dict(model.named_parameters())[key].data
            np.testing.assert_array_equal(got, value, err_msg=key)
        # Sanity: the full run diverges from the midpoint (training moved on).
        assert any(
            not np.array_equal(full.state[k], first.state[k]) for k in full.state
        )


class TestSimulationInvariants:
    @pytest.mark.parametrize("strategy", sorted(ALL_STRATEGIES))
    @pytest.mark.parametrize("gpu,world", [("rtx3090", 8), ("rtx2080", 16)])
    def test_all_cells_well_formed(self, strategy, gpu, world):
        ctx = make_context(GNMT8, gpu, world)
        report = simulate_step(ALL_STRATEGIES[strategy](), ctx)
        assert report.step_time > 0
        assert report.computation_stall >= 0
        assert report.step_time >= report.compute_time - 1e-12
        assert 0 <= report.overlap_ratio <= 1
        # FP of each block never precedes its BP.
        for block in ctx.blocks:
            bp = report.trace.find(f"bp:{block.name}")
            fp = report.trace.find(f"fp:{block.name}")
            assert fp.start >= bp.end - 1e-12

    def test_lm_cpu_spill_only_on_2080(self):
        ctx_3090 = make_context(LM, "rtx3090", 8)
        ctx_2080 = make_context(LM, "rtx2080", 8)
        assert ctx_3090.embedding_device.name == "RTX3090"
        assert ctx_2080.embedding_device.name == "CPU"


class TestRandomizedEquivalence:
    @given(world=st.integers(2, 3), steps=st.integers(1, 3), seed=st.integers(0, 30))
    @settings(max_examples=6, deadline=None)
    def test_embrace_allgather_bit_equal_property(self, world, steps, seed):
        cfg = LM.scaled(vocab=48, dim_divisor=64)
        kw = dict(world_size=world, steps=steps, seed=seed)
        ag = RealTrainer(cfg, strategy="allgather", **kw).train()
        em = RealTrainer(cfg, strategy="embrace", **kw).train()
        assert ag.losses == em.losses
        for key in ag.state:
            np.testing.assert_array_equal(ag.state[key], em.state[key], err_msg=key)
