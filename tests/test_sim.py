"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Task, TaskGraph, Trace, TraceEntry, execute


class TestSimulator:
    def test_events_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        end = sim.run()
        assert order == ["a", "b"]
        assert end == 2.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(5.0, lambda: hits.append(2))
        sim.run(until=2.0)
        assert hits == [1]
        assert sim.pending == 1


class TestTaskGraph:
    def test_duplicate_names_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0, "r")
        with pytest.raises(ValueError):
            g.add_task("a", 1.0, "r")

    def test_forward_deps_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add_task("a", 1.0, "r", deps=("missing",))

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Task("a", -1.0, "r")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Task("a", 1.0, "r", kind="mystery")

    def test_critical_path(self):
        g = TaskGraph()
        g.add_task("a", 2.0, "r1")
        g.add_task("b", 3.0, "r2")
        g.add_task("c", 1.0, "r1", deps=("a", "b"))
        assert g.critical_path() == 4.0

    def test_dependents(self):
        g = TaskGraph()
        g.add_task("a", 1.0, "r")
        g.add_task("b", 1.0, "r", deps=("a",))
        assert g.dependents()["a"] == ["b"]


class TestExecute:
    def test_serial_chain(self):
        g = TaskGraph()
        g.add_task("a", 1.0, "r")
        g.add_task("b", 2.0, "r", deps=("a",))
        trace = execute(g)
        assert trace.makespan == 3.0
        assert trace.find("b").start == 1.0

    def test_parallel_resources_overlap(self):
        g = TaskGraph()
        g.add_task("compute1", 2.0, "compute")
        g.add_task("comm1", 2.0, "comm")
        trace = execute(g)
        assert trace.makespan == 2.0

    def test_resource_exclusivity(self):
        g = TaskGraph()
        g.add_task("a", 1.0, "r")
        g.add_task("b", 1.0, "r")
        trace = execute(g)
        assert trace.makespan == 2.0

    def test_priority_order_on_contended_resource(self):
        g = TaskGraph()
        g.add_task("gate", 0.5, "other")
        # Both become ready at the same instant; low value = high priority.
        g.add_task("low_prio", 1.0, "r", priority=10.0, deps=("gate",))
        g.add_task("high_prio", 1.0, "r", priority=1.0, deps=("gate",))
        trace = execute(g)
        assert trace.find("high_prio").start < trace.find("low_prio").start

    def test_fifo_when_priorities_equal(self):
        g = TaskGraph()
        g.add_task("gate", 0.5, "other")
        g.add_task("first", 1.0, "r", deps=("gate",))
        g.add_task("second", 1.0, "r", deps=("gate",))
        trace = execute(g)
        assert trace.find("first").start < trace.find("second").start

    def test_diamond_dependencies(self):
        g = TaskGraph()
        g.add_task("root", 1.0, "a")
        g.add_task("left", 2.0, "a", deps=("root",))
        g.add_task("right", 3.0, "b", deps=("root",))
        g.add_task("join", 1.0, "a", deps=("left", "right"))
        trace = execute(g)
        assert trace.find("join").start == 4.0
        assert trace.makespan == 5.0

    def test_zero_duration_tasks(self):
        g = TaskGraph()
        g.add_task("a", 0.0, "r")
        g.add_task("b", 0.0, "r", deps=("a",))
        assert execute(g).makespan == 0.0

    @given(
        durations=st.lists(st.floats(0.01, 10), min_size=1, max_size=12),
        chain=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, durations, chain):
        """Makespan is at least the critical path and at most the serial sum."""
        g = TaskGraph()
        prev = None
        for i, d in enumerate(durations):
            deps = (prev,) if (chain and prev) else ()
            g.add_task(f"t{i}", d, f"r{i % 2}", deps=deps)
            prev = f"t{i}"
        trace = execute(g)
        assert trace.makespan >= g.critical_path() - 1e-9
        assert trace.makespan <= sum(durations) + 1e-9


class TestTrace:
    def _demo_trace(self):
        return Trace(
            [
                TraceEntry("bp", "compute", "compute", 0.0, 2.0),
                TraceEntry("comm", "comm", "comm", 2.0, 4.0),
                TraceEntry("sched", "compute", "overhead", 2.0, 2.5),
                TraceEntry("fp", "compute", "compute", 4.0, 5.0),
            ]
        )

    def test_makespan_and_busy(self):
        t = self._demo_trace()
        assert t.makespan == 5.0
        assert t.busy_time("compute") == 3.5
        assert t.busy_time("comm") == 2.0

    def test_computation_stall_counts_overhead(self):
        t = self._demo_trace()
        # makespan 5.0 - useful compute 3.0 = 2.0 (1.5 idle + 0.5 overhead).
        assert t.computation_stall() == pytest.approx(2.0)

    def test_overlap_ratio(self):
        t = self._demo_trace()
        # exposed comm = stall - overhead = 1.5 of 2.0 comm.
        assert t.overlap_ratio() == pytest.approx(1 - 1.5 / 2.0)

    def test_overlap_ratio_no_comm(self):
        t = Trace([TraceEntry("a", "compute", "compute", 0, 1)])
        assert t.overlap_ratio() == 1.0

    def test_find_missing(self):
        with pytest.raises(KeyError):
            self._demo_trace().find("nope")

    def test_render_ascii(self):
        out = self._demo_trace().render_ascii(width=40)
        assert "compute" in out and "comm" in out
        assert "|" in out

    def test_render_empty(self):
        assert Trace([]).render_ascii() == "(empty trace)"


class TestDeadlockDetection:
    def test_unsatisfiable_graph_raises(self):
        # Create a cycle by mutating tasks post-hoc (the builder API
        # cannot express one, so go behind its back).
        g = TaskGraph()
        a = g.add_task("a", 1.0, "r")
        g.add_task("b", 1.0, "r", deps=("a",))
        object.__setattr__ if False else setattr(a, "deps", ("b",))
        with pytest.raises(RuntimeError, match="deadlock"):
            execute(g)


class TestTraceGaps:
    def test_gaps_found(self):
        t = Trace(
            [
                TraceEntry("a", "compute", "compute", 0.0, 1.0),
                TraceEntry("b", "compute", "compute", 2.0, 3.0),
                TraceEntry("c", "comm", "comm", 0.0, 4.0),
            ]
        )
        gaps = t.gaps("compute")
        assert gaps == [(1.0, 2.0), (3.0, 4.0)]

    def test_no_gaps_when_busy(self):
        t = Trace([TraceEntry("a", "compute", "compute", 0.0, 2.0)])
        assert t.gaps("compute") == []

    def test_gap_total_matches_stall_for_pure_compute(self):
        t = Trace(
            [
                TraceEntry("bp", "compute", "compute", 0.0, 2.0),
                TraceEntry("comm", "comm", "comm", 2.0, 4.0),
                TraceEntry("fp", "compute", "compute", 4.0, 5.0),
            ]
        )
        gap_total = sum(b - a for a, b in t.gaps("compute"))
        assert gap_total == pytest.approx(t.computation_stall())
