"""Tests for the synthetic data substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Batch,
    BatchIterator,
    PairBatchIterator,
    Prefetcher,
    SyntheticCorpus,
    SyntheticPairCorpus,
    TokenBudgetBatcher,
    Vocab,
    ZipfSampler,
    pad_batch,
)
from repro.data.tokenizer import count_tokens


class TestVocab:
    def test_basic(self):
        v = Vocab(100)
        assert v.num_words == 96
        assert v.word_id(0) == 4
        assert v.word_id(95) == 99

    def test_word_id_range(self):
        v = Vocab(10)
        with pytest.raises(ValueError):
            v.word_id(6)

    def test_too_small(self):
        with pytest.raises(ValueError):
            Vocab(4)

    def test_duplicate_specials_rejected(self):
        with pytest.raises(ValueError):
            Vocab(10, pad_id=0, bos_id=0)


class TestZipfSampler:
    def test_support_bounds(self):
        s = ZipfSampler(50)
        draws = s.sample(np.random.default_rng(0), 10_000)
        assert draws.min() >= 0 and draws.max() < 50

    def test_head_heavier_than_tail(self):
        s = ZipfSampler(1000, exponent=1.2)
        draws = s.sample(np.random.default_rng(0), 50_000)
        head = (draws < 10).mean()
        tail = (draws >= 500).mean()
        assert head > 5 * tail

    def test_probs_normalized_and_monotone(self):
        s = ZipfSampler(100)
        assert s.probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(s.probs) <= 0)

    def test_expected_distinct_bounds(self):
        s = ZipfSampler(100)
        e = s.expected_distinct(1000)
        assert 0 < e <= 100
        # More draws never reduce distinct count.
        assert s.expected_distinct(2000) >= e

    def test_expected_distinct_matches_empirical(self):
        s = ZipfSampler(200, exponent=1.1)
        rng = np.random.default_rng(1)
        emp = np.mean(
            [len(np.unique(s.sample(rng, 300))) for _ in range(50)]
        )
        assert s.expected_distinct(300) == pytest.approx(emp, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=0)


class TestCorpus:
    def test_sentence_structure(self):
        v = Vocab(100)
        c = SyntheticCorpus(v, min_len=5, max_len=10, seed=0)
        s = c.sentence()
        assert s[0] == v.bos_id and s[-1] == v.eos_id
        assert 7 <= len(s) <= 12
        body = s[1:-1]
        assert body.min() >= Vocab.NUM_SPECIAL and body.max() < v.size

    def test_deterministic_given_seed(self):
        v = Vocab(100)
        a = SyntheticCorpus(v, seed=3).sentences(5)
        b = SyntheticCorpus(v, seed=3).sentences(5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(Vocab(10), min_len=5, max_len=4)

    def test_pair_corpus_lengths_correlated(self):
        v = Vocab(100)
        pc = SyntheticPairCorpus(v, v, min_len=10, max_len=20, length_ratio=2.0, seed=0)
        src, tgt = pc.pair()
        assert len(tgt) - 2 == pytest.approx((len(src) - 2) * 2.0, abs=1)


class TestPadBatch:
    def test_pads_to_longest(self):
        ids, lengths = pad_batch([np.array([1, 2]), np.array([3, 4, 5])], pad_id=0)
        assert ids.shape == (2, 3)
        assert ids[0].tolist() == [1, 2, 0]
        assert lengths.tolist() == [2, 3]

    def test_truncates_to_max_len(self):
        ids, lengths = pad_batch([np.array([1, 2, 3, 4])], pad_id=0, max_len=2)
        assert ids.shape == (1, 2)
        assert lengths.tolist() == [2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pad_batch([], pad_id=0)
        with pytest.raises(ValueError):
            pad_batch([np.array([], dtype=np.int64)], pad_id=0)
        with pytest.raises(ValueError):
            pad_batch([np.array([1])], pad_id=0, max_len=0)

    def test_count_tokens(self):
        ids = np.array([[1, 2, 0], [3, 0, 0]])
        assert count_tokens(ids, pad_id=0) == 3


class TestBatchIterators:
    def test_lm_batch_shapes(self):
        v = Vocab(200)
        it = BatchIterator(SyntheticCorpus(v, seed=0), batch_size=4)
        b = next(iter(it))
        assert isinstance(b, Batch)
        assert b.batch_size == 4
        assert b.inputs.shape == b.targets.shape
        # LM targets are inputs shifted by one.
        assert np.array_equal(b.inputs[:, 1:], b.targets[:, :-1])

    def test_lm_token_ids_exclude_pad(self):
        v = Vocab(200)
        b = next(iter(BatchIterator(SyntheticCorpus(v, min_len=2, max_len=30, seed=1), 8)))
        assert v.pad_id not in b.token_ids["embedding"]

    def test_pair_batch(self):
        v = Vocab(150)
        it = PairBatchIterator(SyntheticPairCorpus(v, v, seed=0), batch_size=3)
        b = next(iter(it))
        assert b.batch_size == 3
        assert set(b.token_ids) == {"encoder_embedding", "decoder_embedding"}
        assert b.num_tokens > 0

    def test_token_budget_batcher_respects_budget(self):
        v = Vocab(150)
        it = TokenBudgetBatcher(
            SyntheticPairCorpus(v, v, min_len=5, max_len=15, seed=0), max_tokens=200
        )
        for _ in range(5):
            b = next(it)
            # Padded source footprint never exceeds the budget (beyond one sentence).
            assert b.inputs.size <= 200 or b.batch_size == 1

    def test_batch_size_validation(self):
        v = Vocab(100)
        with pytest.raises(ValueError):
            BatchIterator(SyntheticCorpus(v), batch_size=0)
        with pytest.raises(ValueError):
            TokenBudgetBatcher(SyntheticPairCorpus(v, v), max_tokens=0)


class TestPrefetcher:
    def test_peek_matches_next(self):
        v = Vocab(100)
        pf = Prefetcher(BatchIterator(SyntheticCorpus(v, seed=0), 2))
        peeked = pf.peek()
        got = next(pf)
        assert peeked is got
        assert pf.peek() is not got

    def test_exhaustion(self):
        batches = [
            Batch(np.zeros((1, 2), dtype=int), np.zeros((1, 2), dtype=int), 2)
            for _ in range(2)
        ]
        pf = Prefetcher(iter(batches))
        assert next(pf) is batches[0]
        assert pf.peek() is batches[1]
        assert next(pf) is batches[1]
        assert pf.peek() is None
        with pytest.raises(StopIteration):
            next(pf)

    @given(n=st.integers(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_prefetcher_preserves_order(self, n):
        batches = [
            Batch(np.full((1, 1), i), np.full((1, 1), i), 1) for i in range(n)
        ]
        out = list(Prefetcher(iter(batches)))
        assert [b.inputs[0, 0] for b in out] == list(range(n))


class TestBatchOverlapStatistics:
    """Consecutive batches share frequent tokens — the property Algorithm 1
    exploits: the prior part is a strict, non-trivial subset."""

    def test_overlap_nontrivial(self):
        v = Vocab(5000)
        it = BatchIterator(SyntheticCorpus(v, min_len=10, max_len=30, seed=0), 64)
        a = next(it).token_ids["embedding"]
        b = next(it).token_ids["embedding"]
        inter = np.intersect1d(a, b)
        assert 0 < len(inter) < len(a)

    def test_larger_vocab_lower_overlap_fraction(self):
        def overlap_frac(vocab_size):
            v = Vocab(vocab_size)
            it = BatchIterator(SyntheticCorpus(v, min_len=10, max_len=30, seed=0), 32)
            a = next(it).token_ids["embedding"]
            b = next(it).token_ids["embedding"]
            return len(np.intersect1d(a, b)) / len(a)

        assert overlap_frac(100_000) < overlap_frac(1_000)


class TestCorpusIO:
    def test_pack_unpack_roundtrip(self):
        from repro.data import pack_sentences, unpack_sentences

        sentences = [np.array([1, 2, 3]), np.array([4]), np.array([5, 6])]
        tokens, offsets = pack_sentences(sentences)
        assert tokens.tolist() == [1, 2, 3, 4, 5, 6]
        assert offsets.tolist() == [0, 3, 4, 6]
        back = unpack_sentences(tokens, offsets)
        for a, b in zip(sentences, back):
            assert np.array_equal(a, b)

    def test_pack_validation(self):
        from repro.data import pack_sentences

        with pytest.raises(ValueError):
            pack_sentences([])
        with pytest.raises(ValueError):
            pack_sentences([np.array([], dtype=np.int64)])

    def test_unpack_validation(self):
        from repro.data import unpack_sentences

        with pytest.raises(ValueError):
            unpack_sentences(np.array([1, 2]), np.array([0, 3]))
        with pytest.raises(ValueError):
            unpack_sentences(np.array([1, 2]), np.array([0, 0, 2]))

    def test_save_load_file_corpus(self, tmp_path):
        from repro.data import FileCorpus, materialize_synthetic

        path = str(tmp_path / "corpus.npz")
        src = SyntheticCorpus(Vocab(100), min_len=3, max_len=6, seed=0)
        materialize_synthetic(path, src, n_sentences=10)
        corpus = FileCorpus(path)
        assert len(corpus) == 10
        assert corpus.vocab.size == 100
        first = corpus.sentence()
        # Replays deterministically and cycles.
        for _ in range(9):
            corpus.sentence()
        assert np.array_equal(corpus.sentence(), first)

    def test_file_corpus_feeds_batch_iterator(self, tmp_path):
        from repro.data import FileCorpus, materialize_synthetic

        path = str(tmp_path / "c.npz")
        materialize_synthetic(
            path, SyntheticCorpus(Vocab(64), min_len=4, max_len=8, seed=1), 20
        )
        it = BatchIterator(FileCorpus(path), batch_size=4)
        batch = next(iter(it))
        assert batch.batch_size == 4
        assert batch.num_tokens > 0

    def test_save_vocab_validation(self, tmp_path):
        from repro.data import save_corpus

        with pytest.raises(ValueError):
            save_corpus(str(tmp_path / "x.npz"), [np.array([200])], vocab_size=100)


class TestZipfMixtureSampler:
    def test_head_mass_respected(self):
        from repro.data.zipf import ZipfMixtureSampler

        s = ZipfMixtureSampler(10_000, head_size=50, head_mass=0.4)
        draws = s.sample(np.random.default_rng(0), 50_000)
        head_frac = (draws < 50).mean()
        assert head_frac == pytest.approx(0.4, abs=0.02)

    def test_probs_normalized(self):
        from repro.data.zipf import ZipfMixtureSampler

        s = ZipfMixtureSampler(1000, head_size=10, head_mass=0.3)
        assert s.probs.sum() == pytest.approx(1.0)

    def test_validation(self):
        from repro.data.zipf import ZipfMixtureSampler

        with pytest.raises(ValueError):
            ZipfMixtureSampler(100, head_size=100, head_mass=0.4)
        with pytest.raises(ValueError):
            ZipfMixtureSampler(100, head_size=10, head_mass=0.0)
        with pytest.raises(ValueError):
            ZipfMixtureSampler(100, head_size=10, head_mass=1.0)

    def test_flatter_tail_than_plain_zipf(self):
        from repro.data.zipf import ZipfMixtureSampler

        plain = ZipfSampler(10_000, exponent=1.1)
        mix = ZipfMixtureSampler(10_000, head_size=100, head_mass=0.4,
                                 tail_exponent=0.3)
        # Beyond the head, the mixture's tail decays more slowly.
        ratio_plain = plain.probs[200] / plain.probs[2000]
        ratio_mix = mix.probs[200] / mix.probs[2000]
        assert ratio_mix < ratio_plain


class TestCorpusRecurrence:
    def test_recurrence_raises_batch_overlap(self):
        v = Vocab(50_000)

        def overlap(recurrence):
            c = SyntheticCorpus(v, min_len=10, max_len=20, zipf_exponent=0.5,
                                recurrence=recurrence, buffer_size=2000, seed=0)
            it = BatchIterator(c, 32)
            for _ in range(10):  # warm the buffer
                next(it)
            a = next(it).token_ids["embedding"]
            b = next(it).token_ids["embedding"]
            return len(np.intersect1d(a, b)) / len(a)

        assert overlap(0.5) > overlap(0.0) + 0.1

    def test_recurrence_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(Vocab(100), recurrence=1.0)
        with pytest.raises(ValueError):
            SyntheticCorpus(Vocab(100), recurrence=0.5, buffer_size=0)

    def test_zero_recurrence_has_no_buffer_cost(self):
        c = SyntheticCorpus(Vocab(100), recurrence=0.0, seed=0)
        c.sentences(5)
        assert len(c._recent) == 0
