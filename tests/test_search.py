"""Tests for autoregressive decoding (greedy + beam)."""

import numpy as np
import pytest

from repro.data import PairBatchIterator, SyntheticPairCorpus, Vocab
from repro.eval import beam_decode, bleu, greedy_decode, sequence_log_prob
from repro.models import GNMT8, TRANSFORMER, build_model
from repro.optim import Adam


def make_model_and_batch(paper_cfg, seed=0):
    cfg = paper_cfg.scaled(vocab=48, dim_divisor=64)
    model = build_model(cfg, rng=np.random.default_rng(seed))
    v = Vocab(48)
    corpus = SyntheticPairCorpus(v, v, min_len=3, max_len=6, seed=seed)
    batch = next(iter(PairBatchIterator(corpus, batch_size=4)))
    return cfg, model, batch


class TestDecodeLogits:
    @pytest.mark.parametrize("paper_cfg", [GNMT8, TRANSFORMER],
                             ids=["GNMT-8", "Transformer"])
    def test_shapes(self, paper_cfg):
        cfg, model, batch = make_model_and_batch(paper_cfg)
        tgt_in = batch.targets[:, :3]
        logits = model.decode_logits(batch.inputs, tgt_in)
        assert logits.shape == (batch.batch_size, 3, 48)

    def test_matches_training_forward(self):
        """decode_logits on the training inputs equals the logits the
        training forward produced (same computation, no loss)."""
        cfg, model, batch = make_model_and_batch(TRANSFORMER)
        model.forward_backward(batch)
        trained_logits = model._last_logits.copy()
        model.zero_grad()
        again = model.decode_logits(batch.inputs, batch.targets[:, :-1])
        np.testing.assert_allclose(again, trained_logits, atol=1e-12)


class TestGreedyDecode:
    def test_output_shape_and_padding(self):
        cfg, model, batch = make_model_and_batch(GNMT8)
        out = greedy_decode(model, batch.inputs, max_len=8)
        assert out.shape[0] == batch.batch_size
        assert out.shape[1] <= 8
        # After an eos, positions are padded with 0.
        for row in out:
            seen_eos = False
            for token in row:
                if seen_eos:
                    assert token == 0
                if token == 2:
                    seen_eos = True

    def test_deterministic(self):
        cfg, model, batch = make_model_and_batch(GNMT8)
        a = greedy_decode(model, batch.inputs, max_len=6)
        b = greedy_decode(model, batch.inputs, max_len=6)
        np.testing.assert_array_equal(a, b)

    def test_training_improves_decoded_bleu(self):
        """Overfit a tiny model on one batch: decoded BLEU against the
        batch's references rises."""
        cfg, model, batch = make_model_and_batch(GNMT8, seed=3)
        refs = [row for row in batch.targets[:, 1:]]

        def decoded_bleu():
            hyp = [row for row in greedy_decode(model, batch.inputs, max_len=10)]
            return bleu(hyp, refs)

        before = decoded_bleu()
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(60):
            model.forward_backward(batch)
            opt.step()
            model.zero_grad()
        after = decoded_bleu()
        assert after > before

    def test_validation(self):
        cfg, model, batch = make_model_and_batch(GNMT8)
        with pytest.raises(ValueError):
            greedy_decode(model, batch.inputs, max_len=0)


class TestBeamDecode:
    def test_single_sentence_required(self):
        cfg, model, batch = make_model_and_batch(GNMT8)
        with pytest.raises(ValueError):
            beam_decode(model, batch.inputs)

    def test_beam1_equals_greedy(self):
        cfg, model, batch = make_model_and_batch(TRANSFORMER)
        src = batch.inputs[:1]
        greedy = greedy_decode(model, src, max_len=6)[0]
        beam, _ = beam_decode(model, src, beam_size=1, max_len=6)
        n = min(len(greedy), len(beam))
        np.testing.assert_array_equal(greedy[:n], beam[:n])

    def test_wider_beam_not_worse(self):
        """Beam search's hypothesis log-prob is >= greedy's."""
        cfg, model, batch = make_model_and_batch(GNMT8, seed=5)
        src = batch.inputs[:1]
        g_ids, g_score = beam_decode(model, src, beam_size=1, max_len=6)
        b_ids, b_score = beam_decode(model, src, beam_size=4, max_len=6)
        assert b_score >= g_score - 1e-9

    def test_score_matches_sequence_log_prob(self):
        cfg, model, batch = make_model_and_batch(TRANSFORMER, seed=2)
        src = batch.inputs[:1]
        ids, score = beam_decode(model, src, beam_size=2, max_len=5)
        recomputed = sequence_log_prob(model, src, ids)
        assert recomputed == pytest.approx(score, abs=1e-9)

    def test_sequence_log_prob_validation(self):
        cfg, model, batch = make_model_and_batch(GNMT8)
        with pytest.raises(ValueError):
            sequence_log_prob(model, batch.inputs[:1], np.array([], dtype=np.int64))
