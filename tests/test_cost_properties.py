"""Property-based tests for the collective cost models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import rtx2080_cluster, rtx3090_cluster
from repro.collectives import CostModel, OmniReduceModel


def any_cluster(nodes, gpus, kind):
    make = rtx3090_cluster if kind else rtx2080_cluster
    return make(num_nodes=nodes, gpus_per_node=gpus)


cluster_strategy = st.builds(
    any_cluster,
    nodes=st.integers(1, 4),
    gpus=st.integers(1, 4),
    kind=st.booleans(),
)

payload_strategy = st.floats(0, 1e9, allow_nan=False)


class TestCostModelProperties:
    @given(cluster_strategy, payload_strategy, payload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_payload(self, cluster, a, b):
        """Bigger payloads never cost less, for every collective."""
        lo, hi = min(a, b), max(a, b)
        m = CostModel(cluster)
        for op in (m.allreduce, m.alltoall, m.allgather, m.parameter_server,
                   m.broadcast, m.reduce_scatter):
            assert op(hi).seconds >= op(lo).seconds - 1e-15

    @given(cluster_strategy, payload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_costs_non_negative(self, cluster, payload):
        m = CostModel(cluster)
        for op in (m.allreduce, m.alltoall, m.allgather, m.parameter_server):
            cost = op(payload)
            assert cost.seconds >= 0
            assert cost.wire_bytes >= 0
            assert cost.num_messages >= 0

    @given(payload_strategy)
    @settings(max_examples=40, deadline=None)
    def test_alltoall_cheaper_than_allgather_multi_worker(self, payload):
        """Same sparse payload: pairwise redistribution moves ~1/N the
        bytes an allgather does."""
        m = CostModel(rtx3090_cluster(4, 1))
        assert m.alltoall(payload).wire_bytes <= m.allgather(payload).wire_bytes

    @given(st.floats(1e3, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_allgather_time_grows_with_world(self, payload):
        t = [
            CostModel(rtx3090_cluster(n, 4)).allgather(payload).seconds
            for n in (1, 2, 4)
        ]
        assert t[0] <= t[1] <= t[2]

    @given(st.floats(0.0, 1.0), st.floats(1e6, 1e9))
    @settings(max_examples=40, deadline=None)
    def test_omnireduce_between_zero_and_dense(self, density, nbytes):
        c = rtx3090_cluster(4, 1)
        omni = OmniReduceModel(c)
        full = omni.allreduce(nbytes, 1.0)
        sparse = omni.allreduce(nbytes, density)
        assert 0 <= sparse.seconds <= full.seconds + 1e-12

    @given(cluster_strategy)
    @settings(max_examples=30, deadline=None)
    def test_symbolic_table2_ordering(self, cluster):
        """At alpha < N/(2(N-1)) ~ 0.5, AlltoAll <= each alternative."""
        m = CostModel(cluster)
        if m.N == 1:
            return
        t = m.table2_symbolic(1e8, alpha=0.3)
        assert t["AlltoAll"] <= t["AllReduce"] + 1e-12
        assert t["AlltoAll"] <= t["PS"] + 1e-12

    @given(cluster_strategy, st.floats(1e3, 1e8))
    @settings(max_examples=30, deadline=None)
    def test_ring_bandwidth_at_least_pairwise(self, cluster, payload):
        m = CostModel(cluster)
        assert m.B_ring >= m.B_pairwise
