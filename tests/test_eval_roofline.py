"""Tests for span metrics and the roofline analysis."""

import numpy as np
import pytest

from repro.cluster import rtx3090_cluster
from repro.eval.accuracy import span_exact_match, span_f1, token_accuracy
from repro.models import BERT_BASE, GNMT8, LM
from repro.perf.roofline import (
    analyze,
    embedding_blocks_are_comm_dominated,
)


class TestTokenAccuracy:
    def test_exact(self):
        pred = np.array([[1, 2, 0], [3, 4, 0]])
        assert token_accuracy(pred, pred) == 1.0

    def test_partial_excludes_padding(self):
        pred = np.array([1, 9, 5])
        gold = np.array([1, 2, 0])
        # Position 2 is padding; 1/2 of the rest correct.
        assert token_accuracy(pred, gold) == 0.5

    def test_all_padding(self):
        assert token_accuracy(np.array([1]), np.array([0])) == 0.0

    def test_no_pad_mode(self):
        pred = np.array([0, 1])
        gold = np.array([0, 2])
        assert token_accuracy(pred, gold, pad_id=None) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            token_accuracy(np.zeros(3), np.zeros(4))


class TestSpanMetrics:
    def test_exact_match(self):
        pred = np.array([[2, 5], [1, 3]])
        gold = np.array([[2, 5], [1, 4]])
        assert span_exact_match(pred, gold) == 0.5

    def test_f1_perfect(self):
        spans = np.array([[0, 4]])
        assert span_f1(spans, spans) == 1.0

    def test_f1_partial_overlap(self):
        pred = np.array([[0, 3]])  # 4 tokens
        gold = np.array([[2, 5]])  # 4 tokens, overlap = 2
        # precision = recall = 0.5 -> F1 = 0.5
        assert span_f1(pred, gold) == pytest.approx(0.5)

    def test_f1_no_overlap(self):
        assert span_f1(np.array([[0, 1]]), np.array([[5, 6]])) == 0.0

    def test_f1_at_least_em(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 10, size=20)
        pred = np.stack([starts, starts + rng.integers(0, 5, 20)], axis=1)
        gold = np.stack([starts, starts + rng.integers(0, 5, 20)], axis=1)
        assert span_f1(pred, gold) >= span_exact_match(pred, gold)

    def test_validation(self):
        with pytest.raises(ValueError):
            span_f1(np.zeros((0, 2)), np.zeros((0, 2)))
        with pytest.raises(ValueError):
            span_f1(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            span_f1(np.zeros((2, 2)), np.zeros((3, 2)))


class TestRoofline:
    @pytest.fixture(scope="class")
    def cluster(self):
        return rtx3090_cluster()

    def test_embeddings_memory_bound(self, cluster):
        rows = analyze(LM, cluster)
        emb = [r for r in rows if r.kind == "embedding"]
        assert emb and all(not r.compute_bound for r in emb)

    def test_transformer_ffn_blocks_compute_heavy(self, cluster):
        from repro.models import TRANSFORMER

        rows = analyze(TRANSFORMER, cluster)
        enc = [r for r in rows if r.name.startswith("encoder.")]
        # Big-batch transformer blocks sit far above embedding intensity.
        emb = [r for r in rows if r.kind == "embedding"]
        assert min(r.arithmetic_intensity for r in enc) > max(
            r.arithmetic_intensity for r in emb
        )

    @pytest.mark.parametrize("cfg", [LM, GNMT8, BERT_BASE], ids=lambda c: c.name)
    def test_paper_premise_holds(self, cluster, cfg):
        """Embedding blocks' dense comm dwarfs their compute — the reason
        an individual sparse scheme is worth building (§2.1)."""
        assert embedding_blocks_are_comm_dominated(cfg, cluster)

    def test_comm_to_compute_positive(self, cluster):
        for r in analyze(GNMT8, cluster):
            assert r.comm_to_compute > 0
            assert r.param_bytes > 0


class TestBertSpanPipeline:
    """End-to-end: BERT fine-tuning improves span EM/F1 on its task."""

    def test_span_metrics_improve_with_training(self):
        import numpy as np

        from repro.engine.workload import batch_stream
        from repro.models import BERT_BASE, build_model
        from repro.optim import Adam

        cfg = BERT_BASE.tiny()
        model = build_model(cfg, rng=np.random.default_rng(0))
        batch = next(iter(batch_stream(cfg, "rtx3090", seed=2)))
        gold = np.stack(model.span_targets(batch.inputs), axis=1)
        opt = Adam(model.parameters(), lr=5e-3)

        model.forward_backward(batch)
        f1_before = span_f1(model.predicted_spans(), gold)
        for _ in range(25):
            opt.step()
            model.zero_grad()
            model.forward_backward(batch)
        f1_after = span_f1(model.predicted_spans(), gold)
        assert f1_after > f1_before

    def test_predicted_spans_requires_forward(self):
        import numpy as np

        from repro.models import BERT_BASE, build_model

        model = build_model(BERT_BASE.tiny(), rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            model.predicted_spans()
