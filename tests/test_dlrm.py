"""Tests for the DLRM-style recsys model extension."""

import numpy as np
import pytest

from repro.data import DLRMBatchIterator
from repro.engine.trainer_real import RealTrainer
from repro.models import block_specs
from repro.models.blocks import DLRM_DENSE_FEATURES
from repro.models.config import ALL_MODELS, DLRM, PAPER_MODELS
from repro.models.registry import build_model, get_config


class TestConfig:
    def test_registered_but_not_a_paper_model(self):
        assert "DLRM" in ALL_MODELS
        assert "DLRM" not in PAPER_MODELS  # Table 1 stays untouched
        assert get_config("DLRM") is DLRM

    def test_shape(self):
        assert DLRM.family == "dlrm"
        assert len(DLRM.tables) == 8
        assert all(t.dim == 64 for t in DLRM.tables)

    def test_tiny_scales_down(self):
        tiny = DLRM.tiny()
        assert tiny.family == "dlrm"
        assert all(t.vocab_size < 500_000 for t in tiny.tables)


class TestBlocks:
    def test_block_structure(self):
        blocks = block_specs(DLRM)
        names = [b.name for b in blocks]
        for t in DLRM.tables:
            assert t.name in names
        assert "bottom_mlp" in names and "top_mlp" in names
        top = next(b for b in blocks if b.name == "top_mlp")
        assert set(top.fp_deps) == {t.name for t in DLRM.tables} | {"bottom_mlp"}


class TestBatchIterator:
    def test_shapes_and_streams(self):
        config = DLRM.tiny()
        batch = next(iter(DLRMBatchIterator(config, batch_size=32, seed=1)))
        assert batch.targets.shape == (32, 1)
        assert set(batch.streams) == {t.name for t in config.tables} | {"__dense__"}
        assert batch.streams["__dense__"].shape == (32, DLRM_DENSE_FEATURES)
        for t in config.tables:
            ids = batch.streams[t.name]
            assert ids.shape == (32, config.src_seq_len)
            assert ids.min() >= 1  # 0 is the padding row
            assert ids.max() < t.vocab_size

    def test_deterministic_per_seed(self):
        config = DLRM.tiny()
        a = next(iter(DLRMBatchIterator(config, 16, seed=5)))
        b = next(iter(DLRMBatchIterator(config, 16, seed=5)))
        c = next(iter(DLRMBatchIterator(config, 16, seed=6)))
        t = config.tables[0].name
        assert np.array_equal(a.streams[t], b.streams[t])
        assert not np.array_equal(a.streams[t], c.streams[t])


class TestModel:
    def test_forward_backward_produces_sparse_grads(self):
        config = DLRM.tiny()
        model = build_model(config, rng=np.random.default_rng(0))
        batch = next(iter(DLRMBatchIterator(config, batch_size=16, seed=0)))
        loss = model.forward_backward(batch)
        assert np.isfinite(loss) and loss > 0
        for name, table in model.embedding_tables().items():
            grad = table.weight.grad
            assert grad is not None, name
            assert grad.indices.size > 0  # SparseRows, touched rows only

    def test_overfits_one_batch(self):
        """Gradients point downhill: repeated SGD on a fixed batch must
        drive its loss down (the synthetic targets are too noisy for a
        short multi-batch run to decrease monotonically)."""
        from repro.optim.sgd import SGD

        config = DLRM.tiny()
        model = build_model(config, rng=np.random.default_rng(0))
        batch = next(iter(DLRMBatchIterator(config, batch_size=32, seed=0)))
        opt = SGD(model.parameters(), lr=0.05)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            losses.append(model.forward_backward(batch))
            opt.step()
        assert losses[-1] < losses[0]

    def test_real_trainer_runs(self):
        result = RealTrainer(
            DLRM.tiny(), strategy="embrace", world_size=2, steps=4, seed=0
        ).train()
        assert len(result.losses) == 4
        assert all(np.isfinite(x) for x in result.losses)

    @pytest.mark.parametrize("strategy", ["embrace", "allgather", "allreduce"])
    def test_overlap_bit_identical(self, strategy):
        losses = {}
        for overlap in (True, False):
            losses[overlap] = RealTrainer(
                DLRM.tiny(), strategy=strategy, world_size=2, steps=3,
                seed=0, overlap=overlap,
            ).train().losses
        assert losses[True] == losses[False]


class TestSimPath:
    def test_context_and_strategies(self):
        from repro.engine.step_simulator import simulate_step
        from repro.engine.trainer_sim import make_context
        from repro.strategies import ALL_STRATEGIES

        ctx = make_context(DLRM, "rtx3090", 4)
        times = {
            name: simulate_step(ALL_STRATEGIES[name](), ctx).step_time
            for name in ("EmbRace", "Horovod-AllReduce", "Horovod-AllGather")
        }
        assert all(t > 0 for t in times.values())
        # DLRM is embedding-dominated: densified AllReduce must lose.
        assert times["EmbRace"] < times["Horovod-AllReduce"]
