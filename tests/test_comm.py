"""Tests for the real communication backend and its collectives."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    allgather_sparse,
    allreduce_sparse_via_allgather,
    alltoall_column_shards,
    alltoall_lookup_results,
    column_slices,
    run_multiprocess,
    run_threaded,
)
from repro.tensors import SparseRows


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, {"x": 42})
                return None
            return comm.recv(0)

        results = run_threaded(2, fn)
        assert results[1] == {"x": 42}

    def test_self_send_rejected(self):
        def fn(comm):
            with pytest.raises(ValueError):
                comm.send(comm.rank, 1)
            return True

        assert all(run_threaded(2, fn))

    def test_byte_accounting(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100))
            else:
                comm.recv(0)
            return comm.bytes_sent

        sent = run_threaded(2, fn)
        assert sent[0] == 800 and sent[1] == 0

    def test_worker_error_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1"):
            run_threaded(2, fn)


class TestCollectives:
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5])
    def test_allreduce_matches_sum(self, world):
        def fn(comm):
            data = np.arange(10, dtype=float) * (comm.rank + 1)
            return comm.allreduce(data)

        results = run_threaded(world, fn)
        expected = np.arange(10, dtype=float) * sum(range(1, world + 1))
        for r in results:
            np.testing.assert_allclose(r, expected)

    def test_allreduce_multidim(self):
        def fn(comm):
            return comm.allreduce(np.full((3, 4), float(comm.rank)))

        for r in run_threaded(3, fn):
            np.testing.assert_allclose(r, np.full((3, 4), 3.0))

    def test_allreduce_mean(self):
        def fn(comm):
            return comm.allreduce_mean(np.array([float(comm.rank)]))

        for r in run_threaded(4, fn):
            assert r[0] == pytest.approx(1.5)

    def test_allreduce_smaller_than_world(self):
        def fn(comm):
            return comm.allreduce(np.array([1.0, 2.0]))

        for r in run_threaded(4, fn):
            np.testing.assert_allclose(r, [4.0, 8.0])

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_allgather_order(self, world):
        def fn(comm):
            return comm.allgather(f"r{comm.rank}")

        for r in run_threaded(world, fn):
            assert r == [f"r{i}" for i in range(world)]

    @pytest.mark.parametrize("world", [2, 3, 5])
    def test_alltoall_personalized(self, world):
        def fn(comm):
            outgoing = [f"{comm.rank}->{j}" for j in range(world)]
            return comm.alltoall(outgoing)

        results = run_threaded(world, fn)
        for rank, received in enumerate(results):
            assert received == [f"{src}->{rank}" for src in range(world)]

    def test_alltoall_wrong_size(self):
        def fn(comm):
            with pytest.raises(ValueError):
                comm.alltoall([1])
            return True

        assert all(run_threaded(2, fn))

    @pytest.mark.parametrize("root", [0, 2])
    def test_broadcast(self, root):
        def fn(comm, root):
            obj = {"data": 99} if comm.rank == root else None
            return comm.broadcast(obj, root=root)

        for r in run_threaded(4, fn, root):
            assert r == {"data": 99}

    def test_barrier_runs(self):
        def fn(comm):
            comm.barrier()
            return comm.rank

        assert run_threaded(3, fn) == [0, 1, 2]

    @given(world=st.integers(2, 4), n=st.integers(1, 40), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_property(self, world, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(world, n))

        def fn(comm):
            return comm.allreduce(data[comm.rank])

        for r in run_threaded(world, fn):
            np.testing.assert_allclose(r, data.sum(axis=0), atol=1e-9)


class TestSparseCollectives:
    @staticmethod
    def _grad(rank, num_rows=12, dim=6):
        rng = np.random.default_rng(rank)
        idx = rng.integers(0, num_rows, size=5)
        return SparseRows(idx, rng.normal(size=(5, dim)), num_rows)

    def test_allgather_sparse(self):
        def fn(comm):
            return allgather_sparse(comm, self._grad(comm.rank))

        results = run_threaded(3, fn)
        for received in results:
            assert len(received) == 3
            for src, g in enumerate(received):
                assert g.allclose(self._grad(src))

    def test_sparse_allreduce_matches_dense(self):
        world = 4

        def fn(comm):
            return allreduce_sparse_via_allgather(comm, self._grad(comm.rank))

        results = run_threaded(world, fn)
        expected = sum(self._grad(r).to_dense() for r in range(world))
        for r in results:
            np.testing.assert_allclose(r.to_dense(), expected, atol=1e-12)

    def test_column_slices_partition(self):
        slices = column_slices(10, 3)
        widths = [s.stop - s.start for s in slices]
        assert sum(widths) == 10 and max(widths) - min(widths) <= 1
        assert slices[0].start == 0 and slices[-1].stop == 10

    def test_alltoall_column_shards_matches_allgather(self):
        """EmbRace's sharded exchange must agree with the baseline's
        gather-and-sum on each rank's columns."""
        world, dim = 3, 7

        def fn(comm):
            grad = self._grad(comm.rank, dim=dim)
            shard = alltoall_column_shards(comm, grad)
            full = allreduce_sparse_via_allgather(comm, grad)
            return shard, full

        results = run_threaded(world, fn)
        slices = column_slices(dim, world)
        for rank, (shard, full) in enumerate(results):
            np.testing.assert_array_equal(shard.indices, full.indices)
            np.testing.assert_array_equal(
                shard.values, full.values[:, slices[rank]]
            )

    def test_alltoall_lookup_results(self):
        """Forward exchange reassembles full-dimension vectors."""
        world, vocab, dim = 3, 20, 6
        table = np.random.default_rng(0).normal(size=(vocab, dim))
        ids_per_rank = [
            np.random.default_rng(10 + r).integers(0, vocab, size=4 + r)
            for r in range(world)
        ]
        slices = column_slices(dim, world)

        def fn(comm):
            my_slice = slices[comm.rank]
            all_ids = comm.allgather(ids_per_rank[comm.rank])
            shard_lookup = np.concatenate(
                [table[ids][:, my_slice] for ids in all_ids]
            )
            return alltoall_lookup_results(
                comm, all_ids, shard_lookup, own_count=len(ids_per_rank[comm.rank])
            )

        results = run_threaded(world, fn)
        for rank, vectors in enumerate(results):
            np.testing.assert_allclose(vectors, table[ids_per_rank[rank]])

    def test_lookup_results_validates_counts(self):
        def fn(comm):
            with pytest.raises(ValueError):
                alltoall_lookup_results(
                    comm,
                    [np.array([1]), np.array([2])],
                    np.zeros((5, 2)),
                    own_count=1,
                )
            return True

        assert all(run_threaded(2, fn))


class TestProcessBackend:
    """The OS-process backend runs the same algorithms."""

    def test_allreduce_processes(self):
        def fn(comm):
            return comm.allreduce(np.full(4, float(comm.rank + 1)))

        for r in run_multiprocess(3, fn):
            np.testing.assert_allclose(r, np.full(4, 6.0))

    def test_alltoall_processes(self):
        def fn(comm):
            return comm.alltoall([np.array([comm.rank * 10 + j]) for j in range(comm.world_size)])

        results = run_multiprocess(2, fn)
        assert results[0][1][0] == 10  # rank1 -> rank0 slot: 1*10+0
        assert results[1][0][0] == 1  # rank0 -> rank1 slot: 0*10+1

    def test_process_error_propagates(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("bad worker")
            return True

        with pytest.raises(RuntimeError, match="rank 0"):
            run_multiprocess(2, fn)


class TestFailureInjection:
    """Dead or hung peers surface as errors, not deadlocks."""

    def test_dead_peer_times_out_recv(self):
        def fn(comm):
            if comm.rank == 0:
                return "exited early"  # never sends
            return comm.recv(0)

        with pytest.raises(RuntimeError, match="rank 1"):
            run_threaded(2, fn, timeout=0.3)

    def test_collective_with_dead_peer_fails(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("crash before the collective")
            return comm.allreduce(np.ones(4))

        with pytest.raises(RuntimeError):
            run_threaded(3, fn, timeout=0.5)

    def test_barrier_abort_on_failure(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("dies before barrier")
            comm.barrier()
            return True

        with pytest.raises(RuntimeError):
            run_threaded(2, fn, timeout=0.5)

    def test_timeout_validation(self):
        from repro.comm.local import ThreadGroup

        with pytest.raises(ValueError):
            ThreadGroup._create(2, timeout=0)

    def test_process_timeout_validation(self):
        from repro.comm.process import ProcessGroup

        with pytest.raises(ValueError):
            ProcessGroup._create(2, timeout=0)

    def test_dead_peer_recv_error_is_informative(self):
        """The thread backend's recv timeout names the silent peer."""

        def fn(comm):
            if comm.rank == 0:
                return None  # exits without ever sending
            with pytest.raises(TimeoutError, match="no message from rank 0"):
                comm.recv(0)
            return True

        assert run_threaded(2, fn, timeout=0.3)[1] is True

    def test_hung_worker_raises_instead_of_returning_partial(self):
        """A thread that outlives the join budget is an error, not a
        silently dropped result."""

        def fn(comm):
            if comm.rank == 1:
                time.sleep(1.0)
            return comm.rank

        with pytest.raises(RuntimeError, match="still alive"):
            run_threaded(2, fn, timeout=0.05)

    @pytest.mark.slow
    def test_process_dead_peer_recv_times_out(self):
        """The process backend's recv timeout names the silent peer too."""

        def fn(comm):
            if comm.rank == 0:
                return "early exit"
            try:
                comm.recv(0)
            except TimeoutError as exc:
                return str(exc)
            return "no error"

        results = run_multiprocess(2, fn, timeout=0.5)
        assert "no message from rank 0" in results[1]

    @pytest.mark.slow
    def test_process_worker_exception_surfaces_origin_rank(self):
        """A worker dying before a barrier breaks the others out of it,
        and the error reported to the caller names the origin rank."""

        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploding before the barrier")
            comm.barrier()
            return True

        with pytest.raises(RuntimeError, match="rank 1"):
            run_multiprocess(2, fn, timeout=1.0)

    def test_survivors_unaffected_after_clean_run(self):
        """The same group machinery still works for healthy runs."""
        def fn(comm):
            return comm.allreduce(np.full(2, float(comm.rank)))

        for r in run_threaded(3, fn, timeout=5.0):
            np.testing.assert_allclose(r, [3.0, 3.0])
