"""Cross-validation: the analytic cost model vs the real backend.

The simulator's credibility rests on its cost model describing what the
real algorithms do.  These tests pin the two layers together on the
quantities both expose exactly: per-rank message counts and wire bytes
of each collective.
"""

import numpy as np
import pytest

from repro.collectives import CostModel
from repro.comm import run_threaded


def measure(world, fn):
    """Run fn on `world` threads; return rank-0's (messages, bytes)."""

    def worker(comm):
        fn(comm)
        return comm.messages_sent, comm.bytes_sent

    return run_threaded(world, worker)[0]


class TestMessageCounts:
    """The model's ``num_messages`` equals the real per-rank send count."""

    @pytest.mark.parametrize("world", [2, 3, 4, 5])
    def test_allreduce(self, world):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        msgs, _ = measure(world, lambda c: c.allreduce(np.ones(64)))
        assert msgs == model.allreduce(64 * 8).num_messages == 2 * (world - 1)

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_allgather(self, world):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        msgs, _ = measure(world, lambda c: c.allgather(np.ones(16)))
        assert msgs == model.allgather(16 * 8).num_messages == world - 1

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_alltoall(self, world):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        msgs, _ = measure(
            world, lambda c: c.alltoall([np.ones(4) for _ in range(world)])
        )
        assert msgs == model.alltoall(world * 4 * 8).num_messages == world - 1


class TestWireBytes:
    """The model's ``wire_bytes`` matches the measured payloads."""

    @pytest.mark.parametrize("world,n", [(2, 64), (4, 64), (4, 100)])
    def test_allreduce_bytes(self, world, n):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        _, sent = measure(world, lambda c: c.allreduce(np.ones(n)))
        predicted = model.allreduce(n * 8).wire_bytes
        # np.array_split makes uneven chunks; the model uses the mean
        # chunk size, so agreement is within one element per step.
        assert sent == pytest.approx(predicted, abs=2 * (world - 1) * 8)

    @pytest.mark.parametrize("world", [2, 3])
    def test_allgather_bytes_exact(self, world):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        _, sent = measure(world, lambda c: c.allgather(np.ones(16)))
        assert sent == model.allgather(16 * 8).wire_bytes

    @pytest.mark.parametrize("world", [2, 4])
    def test_alltoall_bytes_exact(self, world):
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.hardware import RTX3090

        cluster = ClusterSpec("t", 1, world, RTX3090, intra_bw=1e9, inter_bw=1e9)
        model = CostModel(cluster)
        per_peer = 8  # elements sent to each peer
        _, sent = measure(
            world, lambda c: c.alltoall([np.ones(per_peer) for _ in range(world)])
        )
        # Model payload convention: total = world * per-peer bytes.
        assert sent == model.alltoall(world * per_peer * 8).wire_bytes
