"""Tests for the 2D scheduling layer: Algorithm 1, priorities, partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchIterator, SyntheticCorpus, Vocab
from repro.data.batching import Batch
from repro.models import GNMT8, LM, block_specs
from repro.schedule import (
    PRIORITY_DELAYED,
    PRIORITY_PRIOR,
    EmbeddingGradStats,
    VerticalScheduler,
    horizontal_priorities,
    measure_grad_stats,
    partition_tensor,
    vertical_split,
)
from repro.schedule.horizontal import fifo_priorities
from repro.tensors import SparseRows


def sparse(indices, num_rows=20, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    idx = np.array(indices, dtype=np.int64)
    return SparseRows(idx, rng.normal(size=(len(idx), dim)), num_rows)


class TestVerticalSplit:
    def test_algorithm1_example(self):
        """Direct trace of Algorithm 1's steps."""
        grad = sparse([3, 5, 3, 7, 9])  # duplicates: row 3
        current = np.array([3, 5, 7, 9])
        nxt = np.array([5, 9, 11])
        prior, delayed = vertical_split(grad, current, nxt)
        assert sorted(prior.indices.tolist()) == [5, 9]
        assert sorted(delayed.indices.tolist()) == [3, 7]
        # Coalescing happened: row 3 is a single (summed) row.
        assert delayed.coalesced

    def test_parts_reassemble_coalesced_grad(self):
        grad = sparse([1, 1, 2, 8, 8, 8])
        prior, delayed = vertical_split(grad, np.array([1, 2, 8]), np.array([2]))
        assert (prior + delayed).allclose(grad.coalesce())

    def test_empty_intersection(self):
        grad = sparse([1, 2])
        prior, delayed = vertical_split(grad, np.array([1, 2]), np.array([15]))
        assert prior.nnz_rows == 0
        assert delayed.nnz_rows == 2

    def test_full_intersection(self):
        grad = sparse([1, 2])
        prior, delayed = vertical_split(grad, np.array([1, 2]), np.array([1, 2, 3]))
        assert prior.nnz_rows == 2
        assert delayed.nnz_rows == 0

    def test_duplicate_inputs_allowed(self):
        grad = sparse([4, 4, 6])
        prior, delayed = vertical_split(
            grad, np.array([4, 4, 6, 6]), np.array([6, 6])
        )
        assert prior.indices.tolist() == [6]
        assert delayed.indices.tolist() == [4]

    @given(
        grad_rows=st.lists(st.integers(0, 19), min_size=1, max_size=30),
        cur_extra=st.lists(st.integers(0, 19), max_size=10),
        nxt=st.lists(st.integers(0, 19), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_properties(self, grad_rows, cur_extra, nxt):
        grad = sparse(grad_rows, seed=7)
        current = np.array(grad_rows + cur_extra)
        prior, delayed = vertical_split(grad, current, np.array(nxt, dtype=np.int64))
        # Disjoint, covering, dense-sum preserving.
        assert not set(prior.indices) & set(delayed.indices)
        np.testing.assert_allclose(
            prior.to_dense() + delayed.to_dense(), grad.to_dense()
        )
        # Every prior row is in the next batch.
        assert set(prior.indices) <= set(nxt)


class TestVerticalScheduler:
    def _batch(self, ids):
        arr = np.array([ids])
        return Batch(arr, arr, len(ids), token_ids={"embedding": np.unique(arr)})

    def test_uses_table_ids(self):
        sched = VerticalScheduler()
        grad = sparse([2, 3, 4])
        cur = self._batch([2, 3, 4])
        nxt = self._batch([3, 9])
        prior, delayed = sched.split("embedding", grad, cur, nxt)
        assert prior.indices.tolist() == [3]
        assert sorted(delayed.indices.tolist()) == [2, 4]

    def test_no_next_batch_all_prior(self):
        sched = VerticalScheduler()
        grad = sparse([2, 3])
        prior, delayed = sched.split("embedding", grad, self._batch([2, 3]), None)
        assert prior.nnz_rows == 2
        assert delayed.nnz_rows == 0


class TestGradStats:
    def test_invariant_enforced(self):
        with pytest.raises(ValueError):
            EmbeddingGradStats("t", 100, 8, original_rows=5, coalesced_rows=6, prior_rows=1)

    def test_byte_sizes(self):
        st_ = EmbeddingGradStats("t", 100, 8, 10, 6, 2)
        assert st_.row_nbytes == 8 * 4 + 8
        assert st_.original_bytes == 10 * 40
        assert st_.delayed_rows == 4
        assert st_.density == pytest.approx(0.06)

    def test_measure_from_batches(self):
        vocab = Vocab(500)
        it = BatchIterator(SyntheticCorpus(vocab, min_len=5, max_len=15, seed=0), 8)
        batches = [next(it) for _ in range(10)]
        stats = measure_grad_stats(batches, "embedding", 500, 16)
        assert stats.original_rows > stats.coalesced_rows > stats.prior_rows > 0

    def test_world_size_grows_prior(self):
        """More workers -> larger global next batch -> more prior rows."""
        vocab = Vocab(2000)
        it = BatchIterator(SyntheticCorpus(vocab, min_len=10, max_len=20, seed=0), 16)
        batches = [next(it) for _ in range(40)]
        s1 = measure_grad_stats(batches, "embedding", 2000, 16, world_size=1)
        s4 = measure_grad_stats(batches, "embedding", 2000, 16, world_size=4)
        assert s4.prior_rows > s1.prior_rows

    def test_requires_enough_batches(self):
        vocab = Vocab(100)
        it = BatchIterator(SyntheticCorpus(vocab, seed=0), 2)
        with pytest.raises(ValueError):
            measure_grad_stats([next(it)], "embedding", 100, 4)

    def test_unknown_table(self):
        vocab = Vocab(100)
        it = BatchIterator(SyntheticCorpus(vocab, seed=0), 2)
        batches = [next(it) for _ in range(3)]
        with pytest.raises(KeyError):
            measure_grad_stats(batches, "mystery", 100, 4)


class TestHorizontalPriorities:
    def test_fp_order(self):
        prios = horizontal_priorities(block_specs(GNMT8))
        # Encoder block 0's FP runs before encoder block 7's.
        assert prios["encoder.0"] < prios["encoder.7"]
        assert prios["encoder.7"] < prios["decoder.0"]
        assert prios["decoder.7"] < prios["output_projection"]

    def test_embeddings_excluded(self):
        prios = horizontal_priorities(block_specs(LM))
        assert "embedding" not in prios
        assert "softmax_embedding" not in prios

    def test_prior_beats_everything(self):
        prios = horizontal_priorities(block_specs(GNMT8))
        assert PRIORITY_PRIOR < min(prios.values())
        assert PRIORITY_DELAYED > max(prios.values())

    def test_fifo_priorities_follow_order(self):
        p = fifo_priorities(["c", "a", "b"])
        assert p["c"] < p["a"] < p["b"]


class TestByteSchedulerPartitioning:
    def test_exact_multiple(self):
        assert partition_tensor(8e6, 4e6) == [4e6, 4e6]

    def test_remainder_chunk(self):
        chunks = partition_tensor(9e6, 4e6)
        assert chunks == [4e6, 4e6, 1e6]

    def test_small_tensor_single_chunk(self):
        assert partition_tensor(100, 4e6) == [100]

    def test_zero_and_negative(self):
        assert partition_tensor(0) == []
        with pytest.raises(ValueError):
            partition_tensor(-1)
        with pytest.raises(ValueError):
            partition_tensor(10, 0)

    @given(st.floats(1, 1e9), st.floats(1e3, 1e8))
    @settings(max_examples=40, deadline=None)
    def test_chunks_sum_to_total(self, nbytes, part):
        chunks = partition_tensor(nbytes, part)
        assert sum(chunks) == pytest.approx(nbytes)
        assert all(0 < c <= part for c in chunks)
