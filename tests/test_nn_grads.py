"""Finite-difference gradient verification for every nn layer.

These are the ground-truth correctness tests for the framework that
replaces PyTorch autograd: analytic backward == numerical gradient.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F

RNG = np.random.default_rng(12345)
EPS = 1e-6


def numerical_grad(f, x, eps=EPS):
    """Central-difference gradient of scalar f at array x."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f(x)
        x[idx] = orig - eps
        lo = f(x)
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_input_grad(module_fn, x, out_weight, atol=1e-6):
    """Analytic input grad vs numerical for loss = sum(out * out_weight)."""
    def loss_of(xv):
        return float((module_fn(xv) * out_weight).sum())

    out = module_fn(x)
    module, analytic = module_fn.__self__, None  # type: ignore[attr-defined]
    analytic = module.backward(out_weight)
    num = numerical_grad(loss_of, x.copy())
    np.testing.assert_allclose(analytic, num, atol=atol, rtol=1e-4)
    return out


def check_param_grads(module, forward, x, out_weight, atol=1e-6):
    """Analytic parameter grads vs numerical for each dense parameter."""
    module.zero_grad()
    forward(x)
    module.backward(out_weight)
    for name, p in module.named_parameters():
        if p.sparse_grad:
            continue
        analytic = p.grad
        assert analytic is not None, f"{name} got no gradient"

        def loss_of(pv, p=p):
            saved = p.data
            p.data = pv
            out = forward(x)
            p.data = saved
            return float((out * out_weight).sum())

        num = numerical_grad(loss_of, p.data.copy())
        np.testing.assert_allclose(analytic, num, atol=atol, rtol=1e-4, err_msg=name)


# --------------------------------------------------------------------- #
# Functional primitives
# --------------------------------------------------------------------- #
class TestFunctional:
    @pytest.mark.parametrize(
        "fwd,bwd,use_out",
        [
            (F.relu, F.relu_backward, False),
            (F.gelu, F.gelu_backward, False),
            (F.sigmoid, F.sigmoid_backward, True),
            (F.tanh, F.tanh_backward, True),
        ],
    )
    def test_activations(self, fwd, bwd, use_out):
        x = RNG.normal(size=(4, 5))
        w = RNG.normal(size=(4, 5))
        out = fwd(x)
        analytic = bwd(w, out if use_out else x)
        num = numerical_grad(lambda v: float((fwd(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-4)

    def test_softmax_backward(self):
        x = RNG.normal(size=(3, 6))
        w = RNG.normal(size=(3, 6))
        out = F.softmax(x)
        analytic = F.softmax_backward(w, out)
        num = numerical_grad(lambda v: float((F.softmax(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-6, rtol=1e-4)

    def test_softmax_rows_sum_to_one(self):
        x = RNG.normal(size=(5, 7)) * 50
        assert np.allclose(F.softmax(x).sum(axis=-1), 1.0)

    def test_sigmoid_stable_at_extremes(self):
        out = F.sigmoid(np.array([-1e4, 1e4]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_cross_entropy_grad(self):
        logits = RNG.normal(size=(6, 5))
        targets = RNG.integers(0, 5, size=6)
        _, grad, n = F.cross_entropy(logits, targets)
        assert n == 6
        num = numerical_grad(
            lambda v: F.cross_entropy(v, targets)[0], logits.copy()
        )
        np.testing.assert_allclose(grad, num, atol=1e-6, rtol=1e-4)

    def test_cross_entropy_ignore_index(self):
        logits = RNG.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 2])
        loss_all, _, _ = F.cross_entropy(logits, targets)
        loss_ig, grad_ig, n = F.cross_entropy(logits, targets, ignore_index=2)
        assert n == 2
        assert loss_ig != pytest.approx(loss_all)
        # Ignored rows carry zero gradient.
        assert np.all(grad_ig[targets == 2] == 0.0)

    def test_cross_entropy_all_ignored(self):
        logits = RNG.normal(size=(2, 3))
        loss, grad, n = F.cross_entropy(logits, np.array([1, 1]), ignore_index=1)
        assert loss == 0.0 and n == 0 and np.all(grad == 0)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.cross_entropy(RNG.normal(size=(3, 4)), np.zeros(2, dtype=int))


# --------------------------------------------------------------------- #
# Layers: input gradients
# --------------------------------------------------------------------- #
class TestLayerInputGrads:
    def test_linear(self):
        layer = nn.Linear(4, 3, rng=RNG)
        x = RNG.normal(size=(5, 4))
        w = RNG.normal(size=(5, 3))
        out = layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-6, rtol=1e-4)

    def test_layernorm(self):
        layer = nn.LayerNorm(6)
        x = RNG.normal(size=(3, 6))
        w = RNG.normal(size=(3, 6))
        layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)

    def test_feedforward(self):
        layer = nn.FeedForward(4, 8, activation="gelu", rng=RNG)
        x = RNG.normal(size=(2, 4))
        w = RNG.normal(size=(2, 4))
        layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)

    def test_self_attention(self):
        layer = nn.MultiHeadAttention(8, 2, rng=RNG)
        x = RNG.normal(size=(2, 3, 8))
        w = RNG.normal(size=(2, 3, 8))
        layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)

    def test_causal_attention(self):
        layer = nn.MultiHeadAttention(8, 2, rng=RNG)
        x = RNG.normal(size=(1, 4, 8))
        w = RNG.normal(size=(1, 4, 8))
        layer(x, causal=True)
        analytic = layer.backward(w)
        num = numerical_grad(
            lambda v: float((layer(v, causal=True) * w).sum()), x.copy()
        )
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)

    def test_cross_attention_both_grads(self):
        layer = nn.MultiHeadAttention(8, 2, rng=RNG)
        q = RNG.normal(size=(1, 2, 8))
        kv = RNG.normal(size=(1, 3, 8))
        w = RNG.normal(size=(1, 2, 8))
        layer(q, kv_in=kv)
        gq, gkv = layer.backward(w)
        num_q = numerical_grad(
            lambda v: float((layer(v, kv_in=kv) * w).sum()), q.copy()
        )
        num_kv = numerical_grad(
            lambda v: float((layer(q, kv_in=v) * w).sum()), kv.copy()
        )
        np.testing.assert_allclose(gq, num_q, atol=1e-5, rtol=1e-3)
        np.testing.assert_allclose(gkv, num_kv, atol=1e-5, rtol=1e-3)

    def test_transformer_encoder_layer(self):
        layer = nn.TransformerLayer(8, 2, 16, rng=RNG)
        x = RNG.normal(size=(1, 3, 8))
        w = RNG.normal(size=(1, 3, 8))
        layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)

    def test_transformer_decoder_layer(self):
        layer = nn.TransformerLayer(8, 2, 16, cross_attention=True, rng=RNG)
        x = RNG.normal(size=(1, 2, 8))
        mem = RNG.normal(size=(1, 3, 8))
        w = RNG.normal(size=(1, 2, 8))
        layer(x, memory=mem, causal=True)
        gx, gmem = layer.backward(w)
        num_x = numerical_grad(
            lambda v: float((layer(v, memory=mem, causal=True) * w).sum()), x.copy()
        )
        num_mem = numerical_grad(
            lambda v: float((layer(x, memory=v, causal=True) * w).sum()), mem.copy()
        )
        np.testing.assert_allclose(gx, num_x, atol=1e-5, rtol=1e-3)
        np.testing.assert_allclose(gmem, num_mem, atol=1e-5, rtol=1e-3)

    def test_lstm_input_grad(self):
        layer = nn.LSTM(3, 4, num_layers=2, rng=RNG)
        x = RNG.normal(size=(2, 3, 3))
        w = RNG.normal(size=(2, 3, 4))
        layer(x)
        analytic = layer.backward(w)
        num = numerical_grad(lambda v: float((layer(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-5, rtol=1e-3)


# --------------------------------------------------------------------- #
# Layers: parameter gradients
# --------------------------------------------------------------------- #
class TestLayerParamGrads:
    @pytest.mark.parametrize(
        "make,shape",
        [
            (lambda: nn.Linear(3, 4, rng=RNG), (2, 3)),
            (lambda: nn.LayerNorm(5), (3, 5)),
            (lambda: nn.FeedForward(3, 6, rng=RNG), (2, 3)),
        ],
    )
    def test_simple_layers(self, make, shape):
        layer = make()
        x = RNG.normal(size=shape)
        out = layer(x)
        w = RNG.normal(size=out.shape)
        check_param_grads(layer, lambda v: layer(v), x, w)

    def test_attention_params(self):
        layer = nn.MultiHeadAttention(4, 2, rng=RNG)
        x = RNG.normal(size=(1, 3, 4))
        w = RNG.normal(size=(1, 3, 4))
        check_param_grads(layer, lambda v: layer(v), x, w, atol=1e-5)

    def test_lstm_params(self):
        layer = nn.LSTM(2, 3, rng=RNG)
        x = RNG.normal(size=(2, 3, 2))
        w = RNG.normal(size=(2, 3, 3))
        check_param_grads(layer, lambda v: layer(v), x, w, atol=1e-5)


# --------------------------------------------------------------------- #
# Embedding sparse gradient
# --------------------------------------------------------------------- #
class TestEmbeddingGrads:
    def test_sparse_grad_matches_dense_scatter(self):
        emb = nn.Embedding(10, 4, rng=RNG)
        ids = np.array([[1, 3, 1], [0, 3, 9]])
        out = emb(ids)
        assert out.shape == (2, 3, 4)
        grad_out = RNG.normal(size=out.shape)
        emb.backward(grad_out)
        g = emb.weight.grad
        assert g is not None and not g.coalesced
        # Uncoalesced: one row per looked-up token.
        assert g.nnz_rows == 6
        dense = np.zeros((10, 4))
        for b in range(2):
            for t in range(3):
                dense[ids[b, t]] += grad_out[b, t]
        np.testing.assert_allclose(g.to_dense(), dense)

    def test_padding_idx_excluded(self):
        emb = nn.Embedding(10, 4, padding_idx=0, rng=RNG)
        assert np.all(emb.weight.data[0] == 0.0)
        ids = np.array([0, 1, 0, 2])
        out = emb(ids)
        emb.backward(np.ones_like(out))
        g = emb.weight.grad
        assert 0 not in g.indices

    def test_out_of_range_ids(self):
        emb = nn.Embedding(5, 2, rng=RNG)
        with pytest.raises(ValueError):
            emb(np.array([5]))

    def test_grad_accumulates_across_calls(self):
        emb = nn.Embedding(5, 2, rng=RNG)
        for _ in range(2):
            out = emb(np.array([1]))
            emb.backward(np.ones_like(out))
        assert emb.weight.grad.nnz_rows == 2
        assert emb.weight.grad.coalesce().values[0].tolist() == [2.0, 2.0]


# --------------------------------------------------------------------- #
# Module plumbing
# --------------------------------------------------------------------- #
class TestModulePlumbing:
    def _model(self):
        class Toy(nn.Module):
            def __init__(self):
                super().__init__()
                self.emb = nn.Embedding(10, 4, rng=RNG)
                self.fc = nn.Linear(4, 2, rng=RNG)

            def forward(self, ids):
                h = self.emb(ids)
                out = self.fc(h)

                def back(grad):
                    self.emb.backward(self.fc.backward(grad))
                    return None

                self._back = back
                return out

        return Toy()

    def test_named_parameters(self):
        m = self._model()
        names = dict(m.named_parameters())
        assert "emb.weight" in names and "fc.weight" in names and "fc.bias" in names

    def test_dense_sparse_partition(self):
        m = self._model()
        assert len(m.sparse_parameters()) == 1
        assert len(m.dense_parameters()) == 2
        assert m.num_parameters() == 10 * 4 + 4 * 2 + 2

    def test_zero_grad(self):
        m = self._model()
        out = m(np.array([1, 2]))
        m.backward(np.ones_like(out))
        assert m.emb.weight.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_state_dict_roundtrip(self):
        m1, m2 = self._model(), self._model()
        m2.fc.weight.data += 1.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m1.fc.weight.data, m2.fc.weight.data)

    def test_state_dict_mismatch(self):
        m = self._model()
        state = m.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_backward_without_forward(self):
        m = self._model()
        with pytest.raises(RuntimeError):
            m.backward(np.zeros((1, 2)))

    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Dropout(0.5), nn.Linear(3, 3, rng=RNG))
        seq.eval()
        assert not seq.layers[0].training

    def test_sequential_chains_backward(self):
        seq = nn.Sequential(nn.Linear(3, 4, rng=RNG), nn.Linear(4, 2, rng=RNG))
        x = RNG.normal(size=(2, 3))
        w = RNG.normal(size=(2, 2))
        seq(x)
        analytic = seq.backward(w)
        num = numerical_grad(lambda v: float((seq(v) * w).sum()), x.copy())
        np.testing.assert_allclose(analytic, num, atol=1e-6, rtol=1e-4)

    def test_dropout_eval_identity(self):
        d = nn.Dropout(0.9)
        d.eval()
        x = RNG.normal(size=(4, 4))
        assert np.array_equal(d(x), x)

    def test_dropout_train_scales(self):
        d = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,))
        out = d(x)
        # Inverted dropout preserves expectation.
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        # Backward applies the same mask.
        g = d.backward(np.ones_like(x))
        assert np.array_equal(g, out)


class TestCrossEntropyLossModule:
    def test_token_count_and_backward(self):
        loss_fn = nn.CrossEntropyLoss(ignore_index=0)
        logits = RNG.normal(size=(2, 3, 5))
        targets = np.array([[1, 0, 2], [3, 4, 0]])
        loss = loss_fn(logits, targets)
        assert loss_fn.last_token_count == 4
        grad = loss_fn.backward()
        assert grad.shape == logits.shape
        with pytest.raises(RuntimeError):
            loss_fn.backward()


class TestBahdanauAttention:
    def test_shapes(self):
        attn = nn.BahdanauAttention(dec_dim=5, enc_dim=4, attn_dim=6, rng=RNG)
        q = RNG.normal(size=(2, 3, 5))
        mem = RNG.normal(size=(2, 7, 4))
        ctx = attn(q, mem)
        assert ctx.shape == (2, 3, 4)

    def test_attention_weights_convex(self):
        """Contexts are convex combinations of memory rows."""
        attn = nn.BahdanauAttention(3, 3, 4, rng=RNG)
        mem = np.ones((1, 5, 3)) * 2.0
        ctx = attn(RNG.normal(size=(1, 2, 3)), mem)
        np.testing.assert_allclose(ctx, 2.0)

    def test_input_grads_match_numerical(self):
        attn = nn.BahdanauAttention(3, 4, 5, rng=RNG)
        q = RNG.normal(size=(1, 2, 3))
        mem = RNG.normal(size=(1, 3, 4))
        w = RNG.normal(size=(1, 2, 4))
        attn(q, mem)
        gq, gmem = attn.backward(w)
        num_q = numerical_grad(lambda v: float((attn(v, mem) * w).sum()), q.copy())
        num_mem = numerical_grad(lambda v: float((attn(q, v) * w).sum()), mem.copy())
        np.testing.assert_allclose(gq, num_q, atol=1e-6, rtol=1e-4)
        np.testing.assert_allclose(gmem, num_mem, atol=1e-6, rtol=1e-4)

    def test_param_grads_match_numerical(self):
        attn = nn.BahdanauAttention(3, 3, 4, rng=RNG)
        q = RNG.normal(size=(1, 2, 3))
        mem = RNG.normal(size=(1, 3, 3))
        w = RNG.normal(size=(1, 2, 3))
        attn.zero_grad()
        attn(q, mem)
        attn.backward(w)
        for name, p in attn.named_parameters():
            analytic = p.grad

            def loss_of(pv, p=p):
                saved = p.data
                p.data = pv
                out = attn(q, mem)
                p.data = saved
                return float((out * w).sum())

            num = numerical_grad(loss_of, p.data.copy())
            np.testing.assert_allclose(analytic, num, atol=1e-6, rtol=1e-4,
                                       err_msg=name)

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.BahdanauAttention(0, 3, 4)
        attn = nn.BahdanauAttention(3, 3, 4)
        with pytest.raises(ValueError):
            attn(np.ones((2, 3)), np.ones((1, 2, 3)))
