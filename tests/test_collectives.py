"""Tests for cluster topology + collective cost models (Table 2, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CPU_HOST,
    RTX2080,
    RTX3090,
    rtx2080_cluster,
    rtx3090_cluster,
)
from repro.collectives import (
    CostModel,
    OmniReduceModel,
    crossover_sparsity,
    effective_bandwidth,
    sparsity_sweep,
)
from repro.utils.units import MB

GNMT_EMB = 252.5 * MB  # Fig. 4's embedding table


class TestHardware:
    def test_gpu_ratio_sane(self):
        # The 3090 is ~3-4x the 2080 in sustained training FLOPs.
        assert 2.5 < RTX3090.flops / RTX2080.flops < 4.5

    def test_compute_time_monotone(self):
        assert RTX3090.compute_time(2e12) > RTX3090.compute_time(1e12)

    def test_memory_time(self):
        assert RTX3090.memory_time(700e9) == pytest.approx(1.0, rel=0.01)

    def test_cpu_host_slower(self):
        assert CPU_HOST.mem_bandwidth < RTX2080.mem_bandwidth

    def test_validation(self):
        from repro.cluster.hardware import GPUSpec

        with pytest.raises(ValueError):
            GPUSpec("x", flops=0, mem_bandwidth=1, kernel_overhead=0, memory_bytes=1)


class TestClusterSpec:
    def test_world_size(self):
        assert rtx3090_cluster().world_size == 16

    def test_single_node_bottleneck_is_pcie(self):
        c = rtx3090_cluster(num_nodes=1, gpus_per_node=4)
        assert c.bottleneck_bandwidth() == c.intra_bw
        assert c.latency() == c.intra_latency

    def test_multi_node_nic_sharing(self):
        c = rtx3090_cluster(num_nodes=2, gpus_per_node=4)
        # 100 Gbps / 4 GPUs = 3.125 GB/s per worker.
        assert c.bottleneck_bandwidth() == pytest.approx(12.5e9 / 4)

    def test_one_gpu_per_node_no_nic_sharing(self):
        c = rtx3090_cluster(num_nodes=4, gpus_per_node=1)
        # Sole GPU per node: full NIC, bounded only by the PCIe hop.
        assert c.bottleneck_bandwidth() == pytest.approx(min(c.intra_bw, 12.5e9))
        assert c.bottleneck_bandwidth() > rtx3090_cluster(4, 4).bottleneck_bandwidth()

    def test_with_workers_scaling(self):
        c = rtx3090_cluster()
        assert c.with_workers(4).num_nodes == 1
        assert c.with_workers(8).num_nodes == 2
        assert c.with_workers(16).num_nodes == 4
        # Scaling past the spec adds whole nodes of the same shape
        # (used by hybrid mode to extrapolate a calibration).
        grown = c.with_workers(32)
        assert grown.num_nodes == 8
        assert grown.gpus_per_node == c.gpus_per_node
        with pytest.raises(ValueError):
            c.with_workers(6)

    def test_nodes_iterator(self):
        c = rtx3090_cluster(num_nodes=2, gpus_per_node=4)
        assert c.nodes() == ((0, 1, 2, 3), (4, 5, 6, 7))
        # Truncated / extended groupings fill nodes in order.
        assert c.nodes(6) == ((0, 1, 2, 3), (4, 5))
        assert c.nodes(12) == ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11))

    def test_rtx2080_lower_intra_bw(self):
        assert rtx2080_cluster().intra_bw < rtx3090_cluster().intra_bw


class TestEffectiveBandwidth:
    def test_large_messages_approach_peak(self):
        assert effective_bandwidth(10e9, 1e9) == pytest.approx(10e9, rel=0.01)

    def test_half_utilization_point(self):
        assert effective_bandwidth(10e9, 128 * 1024) == pytest.approx(5e9)

    def test_zero_message(self):
        assert effective_bandwidth(10e9, 0) == 10e9

    @given(st.floats(1, 1e9), st.floats(0, 1e10))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_link(self, bw, msg):
        assert effective_bandwidth(bw, msg) <= bw


class TestCostModelTable2:
    @pytest.fixture
    def model(self):
        return CostModel(rtx3090_cluster(num_nodes=4, gpus_per_node=4))

    def test_symbolic_formulas(self, model):
        N, B, beta = model.N, model.B, model.beta
        M, alpha = 1e8, 0.3
        t = model.table2_symbolic(M, alpha)
        assert t["AlltoAll"] == pytest.approx(2 * (N - 1) * (alpha * M / (N * B) + beta))
        assert t["AllReduce"] == pytest.approx(2 * (N - 1) * (M / (N * B) + beta))
        assert t["PS"] == pytest.approx(2 * N * (alpha * M / (4 * B) + beta))
        assert t["AllGather"] == pytest.approx((N - 1) * (alpha * M / B + beta))

    def test_symbolic_alltoall_beats_allreduce_when_sparse(self, model):
        t = model.table2_symbolic(1e8, alpha=0.2)
        assert t["AlltoAll"] < t["AllReduce"]

    def test_single_worker_costs_zero(self):
        model = CostModel(rtx3090_cluster(num_nodes=1, gpus_per_node=1))
        assert model.allreduce(1e8).seconds == 0.0
        assert model.alltoall(1e8).seconds == 0.0
        assert model.allgather(1e8).seconds == 0.0

    def test_allreduce_independent_of_density_wire(self, model):
        # Dense AllReduce always moves the full tensor.
        assert model.allreduce(1e8).wire_bytes == pytest.approx(
            2 * 15 / 16 * 1e8
        )

    def test_allgather_wire_scales_linearly_with_N(self):
        small = CostModel(rtx3090_cluster(num_nodes=1, gpus_per_node=4))
        big = CostModel(rtx3090_cluster(num_nodes=4, gpus_per_node=4))
        assert big.allgather(1e7).wire_bytes / small.allgather(1e7).wire_bytes == pytest.approx(15 / 3)

    def test_ps_server_count_validation(self, model):
        with pytest.raises(ValueError):
            model.parameter_server(1e7, num_servers=5)
        with pytest.raises(ValueError):
            model.parameter_server(1e7, num_servers=0)

    def test_ring_vs_pairwise_bandwidth(self):
        # Multi-node multi-GPU: ring collectives keep full NIC rate,
        # pairwise exchanges share it.
        shared = CostModel(rtx3090_cluster(2, 4))
        assert shared.B_pairwise < shared.B_ring
        # One GPU per node or single node: no sharing penalty.
        assert CostModel(rtx3090_cluster(4, 1)).B_pairwise == CostModel(
            rtx3090_cluster(4, 1)
        ).B_ring
        single = CostModel(rtx3090_cluster(1, 4))
        assert single.B_pairwise == single.B_ring == single.cluster.intra_bw

    def test_broadcast_log_steps(self, model):
        assert model.broadcast(1e6).num_messages == 4  # log2(16)

    def test_reduce_scatter_half_of_allreduce(self, model):
        ar = model.allreduce(1e8)
        rs = model.reduce_scatter(1e8)
        assert rs.wire_bytes == pytest.approx(ar.wire_bytes / 2)

    def test_cost_addition(self, model):
        a, b = model.allreduce(1e6), model.allgather(1e6)
        c = a + b
        assert c.seconds == pytest.approx(a.seconds + b.seconds)
        assert c.num_messages == a.num_messages + b.num_messages


class TestFigure4Shape:
    """The qualitative claims of Fig. 4 hold on our cost model."""

    def test_fig4a_crossover_near_40_percent(self):
        c = rtx3090_cluster(num_nodes=2, gpus_per_node=4)
        x = crossover_sparsity(c, GNMT_EMB)
        assert x is not None and 0.30 <= x <= 0.55

    def test_fig4b_alltoall_wins_everywhere(self):
        c = rtx3090_cluster(num_nodes=4, gpus_per_node=1)
        sweep = sparsity_sweep(
            c, GNMT_EMB, schemes=("alltoall", "allreduce", "allgather", "omnireduce", "ps")
        )
        others = np.vstack([sweep[s] for s in ("allreduce", "allgather", "omnireduce", "ps")])
        assert np.all(sweep["alltoall"] <= others.min(axis=0) + 1e-12)

    def test_omnireduce_improves_with_sparsity(self):
        c = rtx3090_cluster(num_nodes=4, gpus_per_node=1)
        sweep = sparsity_sweep(c, GNMT_EMB, schemes=("omnireduce",))
        assert np.all(np.diff(sweep["omnireduce"]) <= 1e-12)

    def test_allgather_scalability_poor(self):
        # AllGather's time grows ~linearly with N; AlltoAll's stays flat.
        times = {}
        for n_nodes in (1, 2, 4):
            c = rtx3090_cluster(num_nodes=n_nodes, gpus_per_node=4)
            m = CostModel(c)
            times[n_nodes * 4] = (
                m.allgather(0.1 * GNMT_EMB).seconds,
                2 * m.alltoall(0.1 * GNMT_EMB).seconds,
            )
        ag_growth = times[16][0] / times[8][0]
        a2a_growth = times[16][1] / times[8][1]
        assert ag_growth > 1.5
        assert a2a_growth < 1.3

    def test_model_sparsities_favor_alltoall(self):
        """§4.1.2: at the four models' average sparsities (99.7%, 89.7%,
        86.6%, 59.7%), AlltoAll beats dense AllReduce on the 2x4 topology."""
        c = rtx3090_cluster(num_nodes=2, gpus_per_node=4)
        model = CostModel(c)
        for sparsity in (0.997, 0.897, 0.866, 0.597):
            payload = (1 - sparsity) * GNMT_EMB
            assert 2 * model.alltoall(payload).seconds < model.allreduce(GNMT_EMB).seconds


class TestOmniReduce:
    def test_requires_single_gpu_nodes(self):
        with pytest.raises(ValueError):
            OmniReduceModel(rtx3090_cluster(num_nodes=2, gpus_per_node=4))

    def test_block_fraction_bounds(self):
        m = OmniReduceModel(rtx3090_cluster(4, 1))
        assert m.nonzero_block_fraction(0.0, 4096) == 0.0
        assert m.nonzero_block_fraction(1.0, 4096) == 1.0
        # Coarser blocks (smaller rows) raise the non-zero fraction.
        assert m.nonzero_block_fraction(0.1, 64) > m.nonzero_block_fraction(0.1, 4096)

    def test_dense_worse_than_plain_allreduce(self):
        c = rtx3090_cluster(4, 1)
        omni = OmniReduceModel(c)
        plain = CostModel(c)
        assert omni.allreduce(GNMT_EMB, 1.0).seconds > plain.allreduce(GNMT_EMB).seconds
