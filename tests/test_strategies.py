"""Tests for the strategy step graphs and their simulated behaviour."""

import pytest

from repro.cluster import rtx2080_cluster, rtx3090_cluster
from repro.engine.step_simulator import simulate_step
from repro.engine.workload import measure_workload
from repro.models import GNMT8, LM
from repro.sim import execute
from repro.strategies import (
    ALL_STRATEGIES,
    BytePS,
    EmbRace,
    EmbRaceHorizontalOnly,
    EmbRaceNoScheduling,
    EmbRaceRowPartitioned,
    HorovodAllGather,
    HorovodAllReduce,
    Parallax,
    build_context,
)
from repro.strategies.variants import row_partition_skew

ALL = [HorovodAllReduce, HorovodAllGather, BytePS, Parallax, EmbRace,
       EmbRaceNoScheduling, EmbRaceHorizontalOnly, EmbRaceRowPartitioned]


@pytest.fixture(scope="module")
def gnmt_ctx():
    cfg = GNMT8
    stats = measure_workload(cfg, "rtx3090", world_size=8, n_steps=3)
    cluster = rtx3090_cluster().with_workers(8)
    return build_context(cfg, cluster, stats.tables)


@pytest.fixture(scope="module")
def lm_ctx_2080():
    cfg = LM
    stats = measure_workload(cfg, "rtx2080", world_size=8, n_steps=3)
    cluster = rtx2080_cluster().with_workers(8)
    return build_context(cfg, cluster, stats.tables, gpu_kind="rtx2080")


class TestGraphConstruction:
    @pytest.mark.parametrize("strategy_cls", ALL)
    def test_graph_executes(self, gnmt_ctx, strategy_cls):
        graph = strategy_cls().build_step(gnmt_ctx)
        trace = execute(graph)
        assert trace.makespan > 0
        # Every block has bp and fp tasks.
        for block in gnmt_ctx.blocks:
            assert f"bp:{block.name}" in graph
            assert f"fp:{block.name}" in graph

    @pytest.mark.parametrize("strategy_cls", ALL)
    def test_fp_after_bp(self, gnmt_ctx, strategy_cls):
        trace = execute(strategy_cls().build_step(gnmt_ctx))
        for block in gnmt_ctx.blocks:
            bp = trace.find(f"bp:{block.name}")
            fp = trace.find(f"fp:{block.name}")
            assert fp.start >= bp.end

    def test_embrace_has_2d_tasks(self, gnmt_ctx):
        graph = EmbRace().build_step(gnmt_ctx)
        assert "vertical_calc" in graph
        assert "a2a_prior:encoder_embedding" in graph
        assert "a2a_delayed:encoder_embedding" in graph
        assert "a2a_data:decoder_embedding" in graph

    def test_nosched_variant_has_no_vertical(self, gnmt_ctx):
        graph = EmbRaceNoScheduling().build_step(gnmt_ctx)
        assert "vertical_calc" not in graph
        assert "a2a_delayed:encoder_embedding" not in graph

    def test_byteps_partitions_tensors(self, gnmt_ctx):
        graph = BytePS().build_step(gnmt_ctx)
        chunks = [n for n in graph.tasks if n.startswith("ps:encoder_embedding:")]
        # 126 MB table / 4 MB partitions -> many chunks.
        assert len(chunks) > 10

    def test_dense_format_ignores_sparsity(self, gnmt_ctx):
        """Horovod-AllReduce communicates the full table regardless of
        the gradient's density."""
        graph = HorovodAllReduce().build_step(gnmt_ctx)
        table_bytes = gnmt_ctx.config.table("encoder_embedding").nbytes
        expected = gnmt_ctx.cost.allreduce(table_bytes).seconds
        assert graph["ar:encoder_embedding"].duration == pytest.approx(expected)


class TestSchedulingBehaviour:
    def test_priority_scheduling_beats_fifo(self, gnmt_ctx):
        full = simulate_step(EmbRace(), gnmt_ctx)
        nosched = simulate_step(EmbRaceNoScheduling(), gnmt_ctx)
        assert full.step_time <= nosched.step_time

    def test_vertical_adds_over_horizontal(self, gnmt_ctx):
        horizontal = simulate_step(EmbRaceHorizontalOnly(), gnmt_ctx)
        full = simulate_step(EmbRace(), gnmt_ctx)
        assert full.step_time <= horizontal.step_time

    def test_embrace_hoists_embedding_fp(self, gnmt_ctx):
        """§4.2.1: embedding FP runs before encoder-block FP."""
        trace = simulate_step(EmbRace(), gnmt_ctx).trace
        emb_fp = trace.find("fp:encoder_embedding")
        enc_fp = trace.find("fp:encoder.0")
        assert emb_fp.start <= enc_fp.start

    def test_prior_comm_before_delayed(self, gnmt_ctx):
        trace = simulate_step(EmbRace(), gnmt_ctx).trace
        prior = trace.find("a2a_prior:encoder_embedding")
        delayed = trace.find("a2a_delayed:encoder_embedding")
        assert prior.start <= delayed.start

    def test_embrace_overlaps_more_than_default(self, gnmt_ctx):
        emb = simulate_step(EmbRace(), gnmt_ctx)
        ag = simulate_step(HorovodAllGather(), gnmt_ctx)
        assert emb.overlap_ratio >= ag.overlap_ratio - 1e-9

    def test_stall_definition_includes_vertical_calc(self, gnmt_ctx):
        report = simulate_step(EmbRace(), gnmt_ctx)
        calc = report.trace.find("vertical_calc")
        # Stall is at least the scheduling calculation itself.
        assert report.computation_stall >= calc.duration


class TestStrategyOrdering:
    """The headline Fig. 7/8 orderings on a multi-node cluster."""

    def test_embrace_fastest_on_gnmt(self, gnmt_ctx):
        # Among the paper's five methods; the EmbRace+DGC extension may
        # legitimately be faster still.
        paper_methods = [
            "BytePS", "Horovod-AllReduce", "Horovod-AllGather",
            "Parallax", "EmbRace",
        ]
        times = {
            name: simulate_step(ALL_STRATEGIES[name](), gnmt_ctx).step_time
            for name in paper_methods
        }
        assert times["EmbRace"] == min(times.values())

    def test_dense_methods_catastrophic_on_lm_2080(self, lm_ctx_2080):
        """§5.3: with 1.5 GB+ tables, dense methods are 'too slow'."""
        dense = simulate_step(HorovodAllReduce(), lm_ctx_2080).step_time
        sparse = simulate_step(HorovodAllGather(), lm_ctx_2080).step_time
        emb = simulate_step(EmbRace(), lm_ctx_2080).step_time
        assert dense > 5 * sparse
        assert emb < sparse

    def test_lm_tables_on_cpu_for_2080_only(self):
        from repro.cluster.hardware import CPU_HOST

        stats = measure_workload(LM, "rtx3090", world_size=4, n_steps=2)
        ctx_3090 = build_context(LM, rtx3090_cluster(1, 4), stats.tables)
        ctx_2080 = build_context(LM, rtx2080_cluster(1, 4), stats.tables,
                                 gpu_kind="rtx2080")
        assert ctx_3090.embedding_device.name == "RTX3090"
        assert ctx_2080.embedding_device is CPU_HOST

    def test_embrace_stall_lowest(self, gnmt_ctx):
        paper_methods = [
            "BytePS", "Horovod-AllReduce", "Horovod-AllGather",
            "Parallax", "EmbRace",
        ]
        stalls = {
            name: simulate_step(ALL_STRATEGIES[name](), gnmt_ctx).computation_stall
            for name in paper_methods
        }
        assert stalls["EmbRace"] == min(stalls.values())


class TestRowPartitionAblation:
    def test_skew_greater_than_one(self):
        assert row_partition_skew(30_000, 1.1, 16) > 1.5

    def test_skew_single_worker(self):
        assert row_partition_skew(30_000, 1.1, 1) == 1.0

    def test_skew_grows_with_workers(self):
        s4 = row_partition_skew(30_000, 1.1, 4)
        s16 = row_partition_skew(30_000, 1.1, 16)
        assert s16 > s4

    def test_row_partitioning_slower(self, gnmt_ctx):
        col = simulate_step(EmbRace(), gnmt_ctx)
        row = simulate_step(EmbRaceRowPartitioned(), gnmt_ctx)
        assert row.step_time > col.step_time


class TestContextValidation:
    def test_missing_stats_raise(self, gnmt_ctx):
        with pytest.raises(KeyError):
            gnmt_ctx.table_stats("nope")

    def test_lookup_payload(self, gnmt_ctx):
        st = gnmt_ctx.table_stats("encoder_embedding")
        assert gnmt_ctx.lookup_payload_bytes("encoder_embedding") == pytest.approx(
            st.original_rows * st.dim * 4
        )
