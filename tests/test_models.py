"""Model tests: Table 1 calibration, block decomposition, runnable training."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    PairBatchIterator,
    SyntheticCorpus,
    SyntheticPairCorpus,
    Vocab,
)
from repro.models import (
    BERT_BASE,
    GNMT8,
    LM,
    PAPER_MODELS,
    TRANSFORMER,
    block_specs,
    build_model,
    get_config,
    model_size_mb,
    sizing_table,
)
from repro.models.blocks import DENSE, EMBEDDING
from repro.optim import Adam

# Paper Table 1 reference values.
TABLE1 = {
    "LM": (3186.5, 3099.5, 0.9727),
    "GNMT-8": (739.1, 252.5, 0.3416),
    "Transformer": (1067.5, 263.4, 0.2467),
    "BERT-base": (417.7, 89.4, 0.2142),
}


class TestTable1Calibration:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_sizes_within_5_percent(self, name):
        total, emb, ratio = model_size_mb(PAPER_MODELS[name])
        p_total, p_emb, p_ratio = TABLE1[name]
        assert total == pytest.approx(p_total, rel=0.05)
        assert emb == pytest.approx(p_emb, rel=0.05)
        assert ratio == pytest.approx(p_ratio, abs=0.02)

    def test_embedding_ratio_ordering_matches_paper(self):
        # LM > GNMT-8 > Transformer > BERT-base in embedding ratio.
        ratios = [model_size_mb(PAPER_MODELS[n])[2] for n in TABLE1]
        assert ratios == sorted(ratios, reverse=True)

    def test_sizing_table_renders(self):
        out = sizing_table().render()
        for name in TABLE1:
            assert name in out


class TestBlockSpecs:
    @pytest.mark.parametrize("cfg", [LM, GNMT8, TRANSFORMER, BERT_BASE])
    def test_decomposition_well_formed(self, cfg):
        blocks = block_specs(cfg)
        names = [b.name for b in blocks]
        assert len(set(names)) == len(names)
        # First block is an embedding (no FP deps); last dense depends on chain.
        assert blocks[0].kind == EMBEDDING and blocks[0].fp_deps == ()
        # Deps reference earlier-declared blocks only (topological order).
        seen = set()
        for b in blocks:
            assert set(b.fp_deps) <= seen or not b.fp_deps
            seen.add(b.name)

    @pytest.mark.parametrize("cfg", [GNMT8, TRANSFORMER])
    def test_translation_structure(self, cfg):
        blocks = {b.name: b for b in block_specs(cfg)}
        assert "encoder_embedding" in blocks and "decoder_embedding" in blocks
        dec0 = blocks["decoder.0"]
        if cfg.family == "gnmt":
            # GNMT's decoder consumes the attention bridge, which itself
            # depends on both the decoder embedding and the encoder top.
            assert dec0.fp_deps == ("attention",)
            attn = blocks["attention"]
            assert "decoder_embedding" in attn.fp_deps
            assert any(d.startswith("encoder.") for d in attn.fp_deps)
        else:
            # Transformer decoder block 0 depends on both directly.
            assert "decoder_embedding" in dec0.fp_deps
            assert any(d.startswith("encoder.") for d in dec0.fp_deps)

    def test_bert_has_12_uniform_encoder_blocks(self):
        blocks = [b for b in block_specs(BERT_BASE) if b.name.startswith("encoder.")]
        assert len(blocks) == 12
        sizes = {b.param_count for b in blocks}
        assert len(sizes) == 1  # "each holds a similar number of parameters"

    def test_embedding_blocks_match_tables(self):
        for cfg in PAPER_MODELS.values():
            emb_blocks = [b for b in block_specs(cfg) if b.kind == EMBEDDING]
            assert {b.table for b in emb_blocks} == {t.name for t in cfg.tables}

    def test_lm_embedding_dominates(self):
        blocks = block_specs(LM)
        emb = sum(b.param_nbytes for b in blocks if b.kind == EMBEDDING)
        dense = sum(b.param_nbytes for b in blocks if b.kind == DENSE)
        assert emb > 30 * dense


class TestConfig:
    def test_batch_size_per_cluster(self):
        assert GNMT8.batch_size("rtx3090") == 128
        assert GNMT8.batch_size("rtx2080") == 32
        with pytest.raises(ValueError):
            GNMT8.batch_size("a100")

    def test_token_budget_derives_batch(self):
        assert TRANSFORMer_batch_3090 == TRANSFORMER.batch_size("rtx3090")
        assert TRANSFORMER.batch_size("rtx3090") == 5120 // 30
        assert TRANSFORMER.batch_size("rtx2080") == 500 // 30

    def test_tiny_preserves_structure(self):
        tiny = GNMT8.tiny()
        assert tiny.family == "gnmt"
        assert len(tiny.tables) == 2
        assert tiny.embedding_param_count < GNMT8.embedding_param_count

    def test_table_lookup(self):
        assert LM.table("embedding").vocab_size == 793_471
        with pytest.raises(KeyError):
            LM.table("nope")

    def test_get_config(self):
        assert get_config("LM") is LM
        with pytest.raises(KeyError):
            get_config("GPT-5")


TRANSFORMer_batch_3090 = 5120 // 30


def lm_batch(cfg, seed=0):
    vocab = Vocab(cfg.table("embedding").vocab_size)
    corpus = SyntheticCorpus(
        vocab, min_len=cfg.min_sentence_len, max_len=cfg.tgt_seq_len, seed=seed
    )
    return next(
        iter(
            BatchIterator(
                corpus, cfg.batch_size("rtx3090"), max_len=cfg.src_seq_len
            )
        )
    )


def pair_batch(cfg, seed=0):
    src_v = Vocab(cfg.table("encoder_embedding").vocab_size)
    tgt_v = Vocab(cfg.table("decoder_embedding").vocab_size)
    corpus = SyntheticPairCorpus(
        src_v, tgt_v, min_len=cfg.min_sentence_len, max_len=cfg.tgt_seq_len, seed=seed
    )
    return next(iter(PairBatchIterator(corpus, cfg.batch_size("rtx3090"))))


class TestRunnableModels:
    @pytest.mark.parametrize("paper_cfg", [LM, BERT_BASE])
    def test_mono_models_step(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg, rng=np.random.default_rng(0))
        batch = lm_batch(cfg)
        loss = model.forward_backward(batch)
        assert np.isfinite(loss) and loss > 0
        assert model.last_token_count() > 0
        # Every dense block accumulated a gradient.
        for name, params in model.dense_blocks():
            for p in params:
                assert p.grad is not None, f"{name}:{p.name}"
        # Every embedding table produced a sparse gradient.
        assert set(model.sparse_grads()) == {t.name for t in cfg.tables}

    @pytest.mark.parametrize("paper_cfg", [GNMT8, TRANSFORMER])
    def test_translation_models_step(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg, rng=np.random.default_rng(0))
        batch = pair_batch(cfg)
        loss = model.forward_backward(batch)
        assert np.isfinite(loss) and loss > 0
        grads = model.sparse_grads()
        assert set(grads) == {"encoder_embedding", "decoder_embedding"}
        for g in grads.values():
            assert g.nnz_rows > 0

    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8, TRANSFORMER, BERT_BASE])
    def test_loss_decreases_with_training(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg, rng=np.random.default_rng(1))
        make = lm_batch if cfg.family in ("lm", "bert") else pair_batch
        batch = make(cfg, seed=7)
        opt = Adam(model.parameters(), lr=5e-3)
        first = model.forward_backward(batch)
        for _ in range(10):
            opt.step()
            model.zero_grad()
            last = model.forward_backward(batch)
        assert last < first

    def test_wrong_family_rejected(self):
        from repro.models import BertModel

        with pytest.raises(ValueError):
            BertModel(LM.tiny())

    def test_dense_blocks_cover_all_dense_params(self):
        cfg = TRANSFORMER.tiny()
        model = build_model(cfg)
        in_blocks = {id(p) for _, params in model.dense_blocks() for p in params}
        dense = {id(p) for p in model.dense_parameters()}
        assert in_blocks == dense

    def test_lm_sampled_softmax_sparse(self):
        cfg = LM.scaled(vocab=1000, dim_divisor=64)
        model = build_model(cfg, num_sampled=20)
        batch = lm_batch(cfg)
        model.forward_backward(batch)
        g = model.softmax_embedding.weight.grad
        # Sampled softmax touches far fewer rows than the vocabulary.
        assert 0 < g.coalesce().nnz_rows < 1000

    def test_bert_span_targets(self):
        from repro.models import BertModel

        ids = np.array([[0, 5, 6, 0], [7, 8, 0, 0]])
        starts, ends = BertModel.span_targets(ids)
        assert starts.tolist() == [1, 0]
        assert ends.tolist() == [2, 1]

    def test_bert_rejects_long_sequence(self):
        cfg = BERT_BASE.tiny()
        model = build_model(cfg)
        from repro.data.batching import Batch

        too_long = np.ones((1, cfg.src_seq_len + 5), dtype=np.int64)
        with pytest.raises(ValueError):
            model.forward_backward(Batch(too_long, too_long, 1))


class TestModelSummary:
    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8, TRANSFORMER, BERT_BASE],
                             ids=["LM", "GNMT-8", "Transformer", "BERT-base"])
    def test_summary_lists_all_blocks(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg)
        out = model.summary()
        assert cfg.name in out
        for t in cfg.tables:
            assert t.name in out
        for name, _ in model.dense_blocks():
            assert name in out
