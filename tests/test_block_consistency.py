"""Consistency between the structural block decomposition (used by the
simulator) and the actual runnable models.

If the BlockSpec parameter counts drifted from what the numpy models
really allocate, every simulated communication payload would be wrong —
so the two are pinned against each other here at identical configs.
"""

import pytest

from repro.models import (
    BERT_BASE,
    GNMT8,
    LM,
    TRANSFORMER,
    block_specs,
    build_model,
)
from repro.models.blocks import DENSE, EMBEDDING


def spec_count(cfg, kind=None):
    return sum(
        b.param_count
        for b in block_specs(cfg)
        if kind is None or b.kind == kind
    )


class TestBlockSpecVsRunnableModel:
    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8],
                             ids=["LM", "GNMT-8"])
    def test_exact_param_counts_rnn_models(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg)
        assert spec_count(cfg) == model.num_parameters()

    def test_exact_param_counts_transformer(self):
        cfg = TRANSFORMER.tiny()
        model = build_model(cfg)
        assert spec_count(cfg) == model.num_parameters()

    def test_bert_param_counts_close(self):
        # BERT's embedding post-processing block approximates the learned
        # position/type embeddings with linear descriptors; allow 2%.
        cfg = BERT_BASE.tiny()
        model = build_model(cfg)
        assert spec_count(cfg) == pytest.approx(model.num_parameters(), rel=0.02)

    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8, TRANSFORMER],
                             ids=["LM", "GNMT-8", "Transformer"])
    def test_embedding_split_matches(self, paper_cfg):
        cfg = paper_cfg.tiny()
        model = build_model(cfg)
        spec_sparse = spec_count(cfg, EMBEDDING)
        model_sparse = sum(p.numel for p in model.sparse_parameters())
        assert spec_sparse == model_sparse

    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8, TRANSFORMER],
                             ids=["LM", "GNMT-8", "Transformer"])
    def test_dense_block_names_align(self, paper_cfg):
        """Every dense block in the runnable model's decomposition exists
        in the structural spec with the same parameter count."""
        cfg = paper_cfg.tiny()
        model = build_model(cfg)
        spec_by_name = {b.name: b for b in block_specs(cfg) if b.kind == DENSE}
        for name, params in model.dense_blocks():
            assert name in spec_by_name, name
            got = sum(p.numel for p in params)
            assert got == spec_by_name[name].param_count, name

    def test_per_block_fp_deps_reachable_in_model(self):
        """Structural FP deps reference blocks the runnable model also has."""
        cfg = GNMT8.tiny()
        model = build_model(cfg)
        model_blocks = {name for name, _ in model.dense_blocks()}
        model_blocks |= set(model.embedding_tables())
        for b in block_specs(cfg):
            for dep in b.fp_deps:
                assert dep in model_blocks, (b.name, dep)
