"""Tests for the fault-injection & resilience subsystem (``repro.faults``)."""

import time

import numpy as np
import pytest

from repro.faults import (
    CommFailure,
    FaultPlan,
    FaultyCommunicator,
    MessageLost,
    PeerTimeout,
    RankCrashed,
    RetryPolicy,
    apply_duration_hook,
    degraded_step_time,
    expand_with_faults,
    retry_with_backoff,
    run_threaded_with_faults,
)
from repro.sim import Task, TaskGraph, execute
from repro.sim.multirank import expand_to_ranks


class TestFaultPlan:
    def test_defaults_are_benign(self):
        plan = FaultPlan()
        assert plan.is_benign and not plan.perturbs_messages

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_prob": 1.5},
            {"delay_prob": -0.1},
            {"delay_s": -1.0},
            {"reorder_s": -0.5},
            {"recv_deadline": 0.0},
            {"stragglers": {-1: 2.0}},
            {"stragglers": {0: 0.0}},
            {"crashes": {0: -3}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=11,
            stragglers={2: 1.5},
            delay_prob=0.1,
            delay_s=0.01,
            drop_prob=0.05,
            reorder_prob=0.2,
            reorder_s=0.005,
            crashes={1: 7},
            recv_deadline=3.0,
            retry=RetryPolicy(max_retries=2, base_backoff=0.001),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan(seed=3, stragglers={0: 2.0}, crashes={1: 4})
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_compute_skew(self):
        plan = FaultPlan(stragglers={1: 1.5, 3: 2.0})
        assert plan.compute_skew(4) == [1.0, 1.5, 1.0, 2.0]

    def test_crash_disarming(self):
        plan = FaultPlan(crashes={0: 2, 1: 5})
        assert plan.should_crash(0, 2) and not plan.should_crash(0, 3)
        disarmed = plan.without_crashes_at_or_before(2)
        assert disarmed.crashes == {1: 5}
        assert plan.crashes == {0: 2, 1: 5}  # original untouched

    def test_rng_streams_deterministic_and_distinct(self):
        plan = FaultPlan(seed=9)
        a = plan.rng_for(0).random(4)
        np.testing.assert_array_equal(a, plan.rng_for(0).random(4))
        assert not np.array_equal(a, plan.rng_for(1).random(4))
        assert not np.array_equal(a, plan.rng_for(None).random(4))


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, factor=2.0, max_backoff=0.3)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped

    def test_retry_succeeds_after_transients(self):
        sleeps, fails = [], [2]

        def flaky():
            if fails[0] > 0:
                fails[0] -= 1
                raise OSError("transient")
            return "ok"

        out = retry_with_backoff(
            flaky, RetryPolicy(max_retries=4, base_backoff=0.01), sleep=sleeps.append
        )
        assert out == "ok" and len(sleeps) == 2

    def test_retry_exhaustion_reraises(self):
        def always():
            raise OSError("permanent")

        with pytest.raises(OSError):
            retry_with_backoff(
                always,
                RetryPolicy(max_retries=2, base_backoff=0.0),
                sleep=lambda s: None,
            )


class TestFaultyCommunicator:
    def test_benign_plan_is_transparent(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank))), comm.stats.as_dict()

        results = run_threaded_with_faults(3, fn, FaultPlan(recv_deadline=5.0))
        for data, stats in results:
            np.testing.assert_allclose(data, np.full(3, 3.0))
            assert stats["retransmits"] == stats["delayed"] == stats["lost"] == 0

    def test_collectives_survive_delay_and_drop(self):
        plan = FaultPlan(
            seed=2,
            delay_prob=0.5,
            delay_s=0.002,
            drop_prob=0.3,
            reorder_prob=0.3,
            reorder_s=0.002,
            recv_deadline=10.0,
            retry=RetryPolicy(max_retries=10, base_backoff=0.001, max_backoff=0.01),
        )

        def fn(comm):
            out = comm.allreduce(np.arange(4.0) * (comm.rank + 1))
            return out, comm.stats.retransmits

        results = run_threaded_with_faults(3, fn, plan)
        expected = np.arange(4.0) * 6
        for data, _ in results:
            np.testing.assert_allclose(data, expected)
        assert sum(r for _, r in results) > 0  # drops actually happened

    def test_reordered_messages_arrive_in_order(self):
        plan = FaultPlan(seed=4, reorder_prob=0.6, reorder_s=0.02, recv_deadline=5.0)

        def fn(comm):
            if comm.rank == 0:
                for i in range(8):
                    comm.send(1, i)
                return comm.stats.reordered
            return [comm.recv(0) for _ in range(8)]

        results = run_threaded_with_faults(2, fn, plan)
        assert results[1] == list(range(8))
        assert results[0] > 0  # some messages really were held back

    def test_permanent_drop_raises_message_lost(self):
        plan = FaultPlan(
            drop_prob=1.0,
            recv_deadline=1.0,
            retry=RetryPolicy(max_retries=2, base_backoff=0.001),
        )

        def fn(comm):
            if comm.rank == 0:
                comm.send(1, "payload")
            else:
                comm.recv(0)
            return True

        with pytest.raises(RuntimeError) as excinfo:
            run_threaded_with_faults(2, fn, plan)
        assert isinstance(excinfo.value.__cause__, MessageLost)

    def test_dead_peer_raises_typed_timeout(self):
        plan = FaultPlan(recv_deadline=0.2)

        def fn(comm):
            if comm.rank == 0:
                return None  # never sends
            with pytest.raises(PeerTimeout, match="no message from rank 0"):
                comm.recv(0)
            return True

        assert run_threaded_with_faults(2, fn, plan)[1] is True

    def test_check_crash_fires_at_planned_step(self):
        plan = FaultPlan(crashes={1: 3}, recv_deadline=0.5)

        def fn(comm):
            for step in range(5):
                comm.check_crash(step)
            return True

        with pytest.raises(RuntimeError) as excinfo:
            run_threaded_with_faults(2, fn, plan)
        cause = excinfo.value.__cause__
        assert isinstance(cause, RankCrashed)
        assert cause.rank == 1 and cause.step == 3
        assert isinstance(cause, CommFailure)

    def test_straggler_stretches_block(self):
        from repro.comm.local import ThreadGroup

        plan = FaultPlan(stragglers={0: 3.0})
        comm = FaultyCommunicator(ThreadGroup._create(1).communicator(0), plan)
        start = time.perf_counter()
        with comm.straggler():
            time.sleep(0.05)
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.13  # ~3x the block, minus timer slack
        assert comm.stats.straggle_s > 0


def _step_graph() -> TaskGraph:
    """fwd -> collective -> upd, the minimal symmetric step shape."""
    g = TaskGraph()
    g.add(Task(name="fwd", duration=1.0, resource="compute"))
    g.add(Task(name="sync", duration=2.0, resource="comm", deps=("fwd",)))
    g.add(Task(name="upd", duration=0.5, resource="compute", deps=("sync",)))
    return g


class TestSimFaults:
    def test_benign_plan_matches_plain_expansion(self):
        graph = _step_graph()
        plain = execute(expand_to_ranks(graph, 4)).makespan
        faulty = execute(expand_with_faults(graph, 4, FaultPlan())).makespan
        assert faulty == pytest.approx(plain)

    def test_straggler_plan_matches_compute_skew(self):
        graph = _step_graph()
        plan = FaultPlan(stragglers={3: 2.0})
        via_plan = execute(expand_with_faults(graph, 4, plan)).makespan
        via_skew = execute(
            expand_to_ranks(graph, 4, compute_skew=[1.0, 1.0, 1.0, 2.0])
        ).makespan
        assert via_plan == pytest.approx(via_skew)

    def test_degradation_monotone_in_fault_level(self):
        graph = _step_graph()
        stragglers = [
            degraded_step_time(graph, 4, FaultPlan(stragglers={0: f}))
            for f in (1.0, 1.5, 2.0, 3.0)
        ]
        assert all(b >= a for a, b in zip(stragglers, stragglers[1:]))
        drops = [
            degraded_step_time(graph, 4, FaultPlan(seed=5, drop_prob=p))
            for p in (0.0, 0.2, 0.5)
        ]
        assert all(b >= a for a, b in zip(drops, drops[1:]))

    def test_same_plan_same_makespan(self):
        graph = _step_graph()
        plan = FaultPlan(seed=6, delay_prob=0.5, delay_s=0.3, drop_prob=0.2)
        assert degraded_step_time(graph, 4, plan) == degraded_step_time(
            graph, 4, plan
        )

    def test_apply_duration_hook_preserves_structure(self):
        graph = expand_to_ranks(_step_graph(), 3)
        doubled = apply_duration_hook(graph, lambda t: t.duration * 2.0)
        assert set(doubled.tasks) == set(graph.tasks)
        for name, task in graph.tasks.items():
            clone = doubled[name]
            assert clone.duration == pytest.approx(task.duration * 2.0)
            assert clone.deps == task.deps and clone.resource == task.resource
        assert execute(doubled).makespan == pytest.approx(
            2.0 * execute(graph).makespan
        )


class TestResilientTraining:
    """The acceptance criterion: crash -> restore -> bit-equal results."""

    @staticmethod
    def _trainers(strategy, tmp_path, crashes, steps=6):
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        config = GNMT8.tiny()
        kwargs = dict(strategy=strategy, world_size=2, steps=steps, seed=5)
        clean = RealTrainer(config, **kwargs)
        plan = FaultPlan(seed=5, crashes=crashes, recv_deadline=2.0)
        resilient = RealTrainer(
            config,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            **kwargs,
        )
        return clean, resilient

    @pytest.mark.parametrize("strategy", ["allgather", "embrace"])
    def test_crash_recovery_is_bit_exact(self, strategy, tmp_path):
        clean, resilient = self._trainers(strategy, tmp_path, crashes={1: 5})
        expected = clean.train()
        out = resilient.train_resilient()
        assert out.report.attempts == 2
        assert out.report.crash_events == [(1, 5)]
        assert out.report.restore_steps == [4]  # checkpoint_every=2, crash at 5
        assert out.report.steps_replayed == 1
        assert out.result.losses == expected.losses
        for key in expected.state:
            np.testing.assert_array_equal(out.result.state[key], expected.state[key])

    def test_two_crashes_two_recoveries(self, tmp_path):
        clean, resilient = self._trainers(
            "allgather", tmp_path, crashes={0: 2, 1: 5}
        )
        expected = clean.train()
        out = resilient.train_resilient()
        assert out.report.attempts == 3
        assert out.report.crash_events == [(0, 2), (1, 5)]
        assert out.result.losses == expected.losses

    @pytest.mark.slow
    def test_crash_recovery_on_process_shm_backend(self, tmp_path):
        """The acceptance path: restart attempts reuse one persistent
        shared-memory ProcessGroup, and recovery stays bit-exact."""
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        config = GNMT8.tiny()
        kwargs = dict(strategy="allgather", world_size=2, steps=6, seed=5)
        expected = RealTrainer(config, **kwargs).train()
        plan = FaultPlan(seed=5, crashes={1: 5}, recv_deadline=5.0)
        out = RealTrainer(
            config,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            backend="process",
            transport="shm",
            **kwargs,
        ).train_resilient()
        assert out.report.attempts == 2
        assert out.report.crash_events == [(1, 5)]
        assert out.result.losses == expected.losses
        for key in expected.state:
            np.testing.assert_array_equal(
                out.result.state[key], expected.state[key]
            )

    def test_requires_checkpointing(self, tmp_path):
        _, resilient = self._trainers("allgather", tmp_path, crashes={})
        resilient.checkpoint_every = 0
        with pytest.raises(ValueError, match="checkpoint_every"):
            resilient.train_resilient()

    def test_permanent_failure_raises_comm_failure(self, tmp_path):
        from repro.engine.trainer_real import RealTrainer
        from repro.models import GNMT8

        plan = FaultPlan(
            drop_prob=1.0,
            recv_deadline=0.5,
            retry=RetryPolicy(max_retries=1, base_backoff=0.001),
        )
        trainer = RealTrainer(
            GNMT8.tiny(),
            strategy="allgather",
            world_size=2,
            steps=2,
            fault_plan=plan,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
            max_restarts=1,
        )
        with pytest.raises(CommFailure, match="giving up"):
            trainer.train_resilient()


class TestCheckpointExtras:
    def test_extras_roundtrip(self, tmp_path):
        from repro.engine.checkpoint import (
            load_extras,
            peek_step,
            save_checkpoint,
        )
        from repro.models import GNMT8
        from repro.models.registry import build_model

        model = build_model(GNMT8.tiny(), rng=np.random.default_rng(0))
        path = str(tmp_path / "ckpt.npz")
        extras = {"loss_log": np.array([1.0, 0.5]), "flag": np.array(3)}
        save_checkpoint(path, model, step=7, extras=extras)
        assert peek_step(path) == 7
        loaded = load_extras(path)
        assert set(loaded) == {"loss_log", "flag"}
        np.testing.assert_array_equal(loaded["loss_log"], extras["loss_log"])
        assert int(loaded["flag"]) == 3
