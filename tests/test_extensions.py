"""Tests for the extension layer: LR schedules, checkpointing, trace
export, and the CLI."""

import json
import math
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.engine.checkpoint import load_checkpoint, save_checkpoint
from repro.models import GNMT8, LM, build_model
from repro.nn.parameter import Parameter
from repro.optim import Adam, SGD
from repro.optim.lr_schedules import (
    ConstantLR,
    CosineDecay,
    ExponentialDecay,
    WarmupInverseSqrt,
)
from repro.sim.trace import Trace, TraceEntry
from repro.sim.trace_export import to_chrome_trace, write_chrome_trace


def opt():
    return SGD([Parameter(np.zeros(3), name="w")], lr=0.1)


class TestLRSchedules:
    def test_constant(self):
        sched = ConstantLR(opt())
        assert sched.step() == 0.1
        assert sched.step() == 0.1

    def test_warmup_inverse_sqrt_shape(self):
        o = opt()
        sched = WarmupInverseSqrt(o, warmup_steps=10)
        lrs = [sched.step() for _ in range(30)]
        # Rises during warmup...
        assert lrs[4] < lrs[9]
        # ...peaks at the warmup boundary...
        assert max(lrs) == pytest.approx(lrs[9])
        assert lrs[9] == pytest.approx(0.1)
        # ...then decays as 1/sqrt(step).
        assert lrs[29] == pytest.approx(0.1 * math.sqrt(10 / 30), rel=1e-6)
        assert o.lr == lrs[-1]

    def test_exponential_decay(self):
        sched = ExponentialDecay(opt(), decay_rate=0.5, decay_every=5, flat_steps=5)
        lrs = [sched.step() for _ in range(15)]
        assert lrs[4] == 0.1  # flat phase
        assert lrs[9] == pytest.approx(0.05)
        assert lrs[14] == pytest.approx(0.025)

    def test_cosine_decay(self):
        sched = CosineDecay(opt(), total_steps=100, min_lr=0.01)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[0] < 0.1
        assert lrs[-1] == pytest.approx(0.01, abs=1e-6)
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupInverseSqrt(opt(), warmup_steps=0)
        with pytest.raises(ValueError):
            ExponentialDecay(opt(), decay_rate=1.5)
        with pytest.raises(ValueError):
            CosineDecay(opt(), total_steps=10, min_lr=-1)


class TestCheckpoint:
    def test_roundtrip_model_and_optimizer(self, tmp_path):
        from repro.engine.workload import batch_stream

        cfg = GNMT8.tiny()
        model = build_model(cfg, rng=np.random.default_rng(0))
        optim = Adam(model.parameters(), lr=1e-3)
        batch = next(iter(batch_stream(cfg, "rtx3090")))
        model.forward_backward(batch)
        optim.step()
        model.zero_grad()

        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, optim, step=7)

        model2 = build_model(cfg, rng=np.random.default_rng(99))
        optim2 = Adam(model2.parameters(), lr=1e-3)
        step = load_checkpoint(path, model2, optim2)
        assert step == 7
        for (n1, p1), (_, p2) in zip(
            model.named_parameters(), model2.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)

        # Resumed training is bit-identical to uninterrupted training.
        model.forward_backward(batch)
        optim.step()
        model2.forward_backward(batch)
        optim2.step()
        for (n1, p1), (_, p2) in zip(
            model.named_parameters(), model2.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data, err_msg=n1)

    def test_model_only(self, tmp_path):
        cfg = LM.tiny()
        model = build_model(cfg)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        model2 = build_model(cfg, rng=np.random.default_rng(5))
        assert load_checkpoint(path, model2) == 0
        np.testing.assert_array_equal(
            model.embedding.weight.data, model2.embedding.weight.data
        )

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cfg = LM.tiny()
        model = build_model(cfg)
        path = str(tmp_path / "a.npz")
        save_checkpoint(path, model)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []


class TestTraceExport:
    def _trace(self):
        return Trace(
            [
                TraceEntry("bp", "compute", "compute", 0.0, 1.0),
                TraceEntry("ar", "comm", "comm", 1.0, 2.5),
            ]
        )

    def test_chrome_format(self):
        doc = to_chrome_trace(self._trace())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        ar = next(e for e in spans if e["name"] == "ar")
        assert ar["ts"] == pytest.approx(1.0e6)
        assert ar["dur"] == pytest.approx(1.5e6)

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(self._trace(), path)
        with open(path) as fh:
            doc = json.load(fh)
        assert "traceEvents" in doc

    def test_lane_metadata(self):
        doc = to_chrome_trace(self._trace(), process_name="demo")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"demo", "comm", "compute"} <= names


class TestCLI:
    def test_sizes(self, capsys):
        assert cli_main(["sizes"]) == 0
        out = capsys.readouterr().out
        assert "LM" in out and "BERT-base" in out

    def test_simulate(self, capsys):
        assert cli_main(["simulate", "--model", "GNMT-8", "--world", "4"]) == 0
        out = capsys.readouterr().out
        assert "tokens/s" in out

    def test_train(self, capsys):
        assert cli_main(
            ["train", "--model", "LM", "--steps", "2", "--world", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "step   0" in out or "step 0" in out.replace("  ", " ")

    def test_trace(self, tmp_path, capsys):
        out_file = str(tmp_path / "trace.json")
        assert cli_main(
            ["trace", "--model", "LM", "--world", "4", "-o", out_file]
        ) == 0
        with open(out_file) as fh:
            assert "traceEvents" in json.load(fh)

    def test_experiment_single(self, capsys, tmp_path):
        out_file = str(tmp_path / "exp.md")
        assert cli_main(["experiment", "table1", "-o", out_file]) == 0
        with open(out_file) as fh:
            assert "Table 1" in fh.read()

    def test_experiment_unknown(self, capsys):
        assert cli_main(["experiment", "fig99"]) == 2
