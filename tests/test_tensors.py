"""Unit + property tests for repro.tensors (COO semantics underlying Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import (
    SparseRows,
    TensorSpec,
    rows_intersect,
    rows_setdiff,
    scatter_add_rows,
    sorted_union,
    unique_rows,
)


# --------------------------------------------------------------------- #
# TensorSpec
# --------------------------------------------------------------------- #
class TestTensorSpec:
    def test_sizes(self):
        spec = TensorSpec("emb", (1000, 256))
        assert spec.numel == 256_000
        assert spec.itemsize == 4
        assert spec.nbytes == 1_024_000
        assert spec.mb == pytest.approx(1.024)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TensorSpec("x", ())
        with pytest.raises(ValueError):
            TensorSpec("x", (0, 5))

    def test_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            TensorSpec("x", (2,), dtype="notadtype")

    def test_with_rows(self):
        spec = TensorSpec("emb", (1000, 64))
        sub = spec.with_rows(10)
        assert sub.shape == (10, 64)
        with pytest.raises(ValueError):
            spec.with_rows(0)
        with pytest.raises(ValueError):
            TensorSpec("v", (5,)).with_rows(2)

    def test_column_shard_covers_all_columns(self):
        spec = TensorSpec("emb", (100, 10))
        widths = [spec.column_shard(4, r).shape[1] for r in range(4)]
        assert sum(widths) == 10
        assert max(widths) - min(widths) <= 1
        # Every shard keeps the full vocabulary (column-wise property, §4.1.1).
        assert all(spec.column_shard(4, r).shape[0] == 100 for r in range(4))

    def test_row_shard_covers_all_rows(self):
        spec = TensorSpec("emb", (103, 8))
        heights = [spec.row_shard(4, r).shape[0] for r in range(4)]
        assert sum(heights) == 103
        assert max(heights) - min(heights) <= 1

    def test_shard_rank_range(self):
        spec = TensorSpec("emb", (10, 10))
        with pytest.raises(ValueError):
            spec.column_shard(4, 4)
        with pytest.raises(ValueError):
            spec.row_shard(4, -1)

    def test_column_shard_too_many_ranks(self):
        with pytest.raises(ValueError):
            TensorSpec("e", (10, 2)).column_shard(3, 2)


# --------------------------------------------------------------------- #
# SparseRows basics
# --------------------------------------------------------------------- #
def make_sparse(indices, values, num_rows=10):
    return SparseRows(np.array(indices), np.array(values, dtype=float), num_rows)


class TestSparseRowsConstruction:
    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            make_sparse([0, 1], [[1.0, 2.0]])

    def test_validates_range(self):
        with pytest.raises(ValueError):
            make_sparse([10], [[1.0]], num_rows=10)
        with pytest.raises(ValueError):
            make_sparse([-1], [[1.0]], num_rows=10)

    def test_validates_dims(self):
        with pytest.raises(ValueError):
            SparseRows(np.zeros((2, 2), dtype=np.int64), np.zeros((2, 3)), 5)
        with pytest.raises(ValueError):
            SparseRows(np.zeros(2, dtype=np.int64), np.zeros(2), 5)

    def test_empty(self):
        s = SparseRows.empty(100, 16)
        assert s.nnz_rows == 0
        assert s.dim == 16
        assert s.density == 0.0
        assert s.to_dense().shape == (100, 16)

    def test_from_dense(self):
        dense = np.zeros((5, 3))
        dense[1] = 1.0
        dense[4] = -2.0
        s = SparseRows.from_dense(dense)
        assert list(s.indices) == [1, 4]
        assert np.array_equal(s.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            SparseRows.from_dense(np.zeros(5))

    def test_nbytes_counts_indices_and_values(self):
        s = make_sparse([1, 2], [[1.0, 2.0], [3.0, 4.0]])
        assert s.nbytes == 2 * 2 * 8 + 2 * 8


class TestCoalesce:
    def test_sums_duplicates(self):
        s = make_sparse([3, 1, 3], [[1.0], [2.0], [4.0]])
        c = s.coalesce()
        assert list(c.indices) == [1, 3]
        assert c.values[:, 0].tolist() == [2.0, 5.0]
        assert c.coalesced

    def test_idempotent(self):
        s = make_sparse([3, 1, 3], [[1.0], [2.0], [4.0]]).coalesce()
        assert s.coalesce() is s

    def test_empty_coalesce(self):
        s = SparseRows.empty(4, 2)
        assert s.coalesce().nnz_rows == 0

    def test_reduces_size(self):
        # Table 3's "coalesced size" effect: duplicates shrink the payload.
        s = make_sparse([0, 0, 0, 1], [[1.0]] * 4)
        assert s.coalesce().nbytes < s.nbytes

    def test_matches_add_at_reference(self):
        """The vectorized argsort+reduceat path groups each row's
        entries in their original relative order; the per-row sums match
        the np.add.at scatter it replaced (reduceat may pair-wise-sum
        long buckets, so the comparison is allclose, and determinism is
        asserted separately: same input, same bits)."""
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 20, size=200)
        vals = rng.normal(size=(200, 4))
        c = SparseRows(idx, vals, 20).coalesce()
        assert np.array_equal(c.indices, np.sort(np.unique(idx)))
        ref = np.zeros((20, 4))
        np.add.at(ref, idx, vals)
        dense = np.zeros((20, 4))
        dense[c.indices] = c.values
        np.testing.assert_allclose(dense, ref, rtol=1e-12, atol=1e-12)
        again = SparseRows(idx, vals, 20).coalesce()
        np.testing.assert_array_equal(c.values, again.values)

    def test_bit_equal_to_add_at_for_short_buckets(self):
        """Real embedding-gradient buckets (a handful of duplicate hits
        per row) sum left-to-right in both implementations: bit-equal."""
        idx = np.array([5, 2, 5, 2, 5, 9])
        vals = np.array([[1e16], [3.0], [1.0], [7.0], [-1e16], [0.5]])
        c = SparseRows(idx, vals, 10).coalesce()
        ref = np.zeros((10, 1))
        np.add.at(ref, idx, vals)
        dense = np.zeros((10, 1))
        dense[c.indices] = c.values
        np.testing.assert_array_equal(dense, ref)

    def test_density_cached_and_consistent(self):
        s = make_sparse([3, 1, 3], [[1.0], [2.0], [4.0]])
        assert s._distinct_rows is None
        assert s.density == 0.2  # 2 distinct of 10
        assert s._distinct_rows == 2  # computed once, then cached
        assert s.coalesce().density == 0.2

    def test_bit_identical_to_reduceat_randomized(self):
        """The grouped fast path (vectorized 1/2/3/4-row groups + per-group
        reduceat for larger ones) pins reduceat's fold order empirically;
        every output must be bit-identical to one full reduceat pass,
        across dup-light and dup-heavy inputs, both float dtypes."""
        rng = np.random.default_rng(17)
        for _ in range(150):
            rows = int(rng.integers(1, 300))
            n = int(rng.integers(0, 1500))
            lim = max(1, int(rows * rng.choice([0.02, 0.2, 1.0])))
            idx = rng.integers(0, min(lim, rows), size=n)
            dim = int(rng.integers(1, 9))
            vals = (
                rng.normal(size=(n, dim)) * 10.0 ** rng.integers(-8, 8, size=(n, 1))
            ).astype(rng.choice([np.float32, np.float64]))
            c = SparseRows(idx, vals, rows).coalesce()
            if n == 0:
                assert c.nnz_rows == 0
                continue
            order = np.argsort(idx, kind="stable")
            si = idx[order]
            starts = np.flatnonzero(np.r_[True, si[1:] != si[:-1]])
            ref = np.add.reduceat(vals[order], starts, axis=0)
            np.testing.assert_array_equal(c.indices, si[starts])
            np.testing.assert_array_equal(c.values, ref)

    def test_sorted_union_matches_unique(self):
        rng = np.random.default_rng(23)
        for _ in range(80):
            parts = [
                np.unique(rng.integers(0, 500, size=int(rng.integers(0, 200))))
                for _ in range(int(rng.integers(0, 5)))
            ]
            got = sorted_union(parts)
            total = sum(len(p) for p in parts)
            ref = (
                np.unique(np.concatenate(parts))
                if parts and total
                else np.empty(0, np.int64)
            )
            np.testing.assert_array_equal(got, ref)
            assert got.dtype == np.int64 or total == 0


class TestIndexSelectAndSplit:
    def test_index_select_subset(self):
        s = make_sparse([1, 3, 5], [[1.0], [2.0], [3.0]])
        sub = s.index_select(np.array([3, 5, 7]))
        assert list(sub.indices) == [3, 5]

    def test_index_select_out_of_range(self):
        s = make_sparse([1], [[1.0]])
        with pytest.raises(ValueError):
            s.index_select(np.array([100]))

    def test_split_partitions(self):
        s = make_sparse([1, 3, 5, 7], [[1.0], [2.0], [3.0], [4.0]])
        prior, delayed = s.split(np.array([3, 7]))
        assert sorted(prior.indices.tolist()) == [3, 7]
        assert sorted(delayed.indices.tolist()) == [1, 5]
        # Reassembling both parts recovers the original gradient.
        assert (prior + delayed).allclose(s.coalesce())


class TestApplyAndCombine:
    def test_add_to_matches_dense(self):
        s = make_sparse([0, 0, 2], [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]], num_rows=4)
        table = np.ones((4, 2))
        s.add_to(table, scale=0.5)
        expected = np.ones((4, 2))
        expected[0] += 0.5 * 3.0
        expected[2] += 0.5 * 3.0
        assert np.allclose(table, expected)

    def test_add_to_shape_check(self):
        s = make_sparse([0], [[1.0]])
        with pytest.raises(ValueError):
            s.add_to(np.zeros((3, 1)))

    def test_add_sums(self):
        a = make_sparse([1], [[1.0]])
        b = make_sparse([1], [[2.0]])
        assert (a + b).to_dense()[1, 0] == 3.0

    def test_concat_validates(self):
        a = make_sparse([1], [[1.0]], num_rows=10)
        b = make_sparse([1], [[1.0]], num_rows=11)
        with pytest.raises(ValueError):
            SparseRows.concat([a, b])
        with pytest.raises(ValueError):
            SparseRows.concat([])

    def test_scale(self):
        s = make_sparse([2], [[3.0]])
        assert s.scale(2.0).values[0, 0] == 6.0

    def test_allclose_shape_mismatch(self):
        a = make_sparse([1], [[1.0]], num_rows=4)
        b = make_sparse([2], [[1.0]], num_rows=4)
        assert not a.allclose(b)


# --------------------------------------------------------------------- #
# Set ops
# --------------------------------------------------------------------- #
class TestRowOps:
    def test_unique_rows_flattens(self):
        out = unique_rows(np.array([[3, 1], [3, 2]]))
        assert out.tolist() == [1, 2, 3]

    def test_intersect_and_diff_partition(self):
        a = np.array([1, 2, 3, 4])
        b = np.array([3, 4, 5])
        inter = rows_intersect(a, b)
        diff = rows_setdiff(a, b)
        assert inter.tolist() == [3, 4]
        assert diff.tolist() == [1, 2]
        assert sorted(inter.tolist() + diff.tolist()) == a.tolist()

    def test_scatter_add_rows(self):
        table = np.zeros((3, 2))
        scatter_add_rows(table, np.array([0, 0]), np.ones((2, 2)), scale=2.0)
        assert table[0].tolist() == [4.0, 4.0]

    def test_scatter_add_rows_length_check(self):
        with pytest.raises(ValueError):
            scatter_add_rows(np.zeros((3, 2)), np.array([0]), np.ones((2, 2)))


# --------------------------------------------------------------------- #
# Property tests
# --------------------------------------------------------------------- #
sparse_strategy = st.integers(min_value=1, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 19), min_size=0, max_size=n).map(np.array),
        st.just(n),
    )
)


@st.composite
def sparse_tensors(draw, num_rows=20, dim=3):
    nnz = draw(st.integers(0, 30))
    idx = draw(
        st.lists(st.integers(0, num_rows - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.lists(
                st.floats(-100, 100, allow_nan=False, width=32),
                min_size=dim,
                max_size=dim,
            ),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseRows(
        np.array(idx, dtype=np.int64),
        np.array(vals, dtype=float).reshape(nnz, dim),
        num_rows,
    )


class TestSparseProperties:
    @given(sparse_tensors())
    @settings(max_examples=60, deadline=None)
    def test_coalesce_preserves_dense(self, s):
        assert np.allclose(s.coalesce().to_dense(), s.to_dense())

    @given(sparse_tensors())
    @settings(max_examples=60, deadline=None)
    def test_coalesce_unique_sorted(self, s):
        c = s.coalesce()
        assert len(np.unique(c.indices)) == len(c.indices)
        assert np.all(np.diff(c.indices) > 0) or len(c.indices) <= 1

    @given(sparse_tensors(), st.lists(st.integers(0, 19), max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_split_is_partition(self, s, rows):
        rows = np.array(rows, dtype=np.int64)
        inside, outside = s.split(rows)
        # Dense reconstruction is preserved by the split.
        assert np.allclose(
            inside.to_dense() + outside.to_dense(), s.to_dense()
        )
        # No selected row leaks into the outside part.
        assert not np.isin(outside.indices, rows).any()

    @given(sparse_tensors(), sparse_tensors())
    @settings(max_examples=60, deadline=None)
    def test_add_matches_dense_add(self, a, b):
        assert np.allclose((a + b).to_dense(), a.to_dense() + b.to_dense())

    @given(sparse_tensors())
    @settings(max_examples=60, deadline=None)
    def test_density_bounds(self, s):
        assert 0.0 <= s.density <= 1.0
