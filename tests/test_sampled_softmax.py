"""Tests for the sampled-softmax head (the LM's second sparse table)."""

import numpy as np
import pytest

from repro import nn
from repro.models.base import SampledSoftmax
from repro.nn import functional as F

RNG = np.random.default_rng(0)


def make_head(vocab=20, dim=6, num_sampled=None, seed=1):
    table = nn.Embedding(vocab, dim, rng=np.random.default_rng(seed))
    return table, SampledSoftmax(table, num_sampled=num_sampled,
                                 rng=np.random.default_rng(seed + 1))


class TestFullSoftmaxMode:
    def test_matches_explicit_cross_entropy(self):
        table, head = make_head()
        hidden = RNG.normal(size=(3, 4, 6))
        targets = RNG.integers(1, 20, size=(3, 4))
        loss = head(hidden, targets, pad_id=0)
        logits = hidden.reshape(-1, 6) @ table.weight.data.T
        expected, _, _ = F.cross_entropy(logits, targets.reshape(-1))
        assert loss == pytest.approx(expected)

    def test_grad_hidden_matches_numerical(self):
        table, head = make_head(vocab=8, dim=3)
        hidden = RNG.normal(size=(2, 3))
        targets = np.array([1, 5])
        head(hidden, targets, pad_id=0)
        analytic = head.backward()

        def loss_of(h):
            t2, h2 = make_head(vocab=8, dim=3)
            t2.weight.data = table.weight.data
            return h2(h, targets, pad_id=0)

        eps = 1e-6
        num = np.zeros_like(hidden)
        for idx in np.ndindex(hidden.shape):
            hp, hm = hidden.copy(), hidden.copy()
            hp[idx] += eps
            hm[idx] -= eps
            num[idx] = (loss_of(hp) - loss_of(hm)) / (2 * eps)
        np.testing.assert_allclose(analytic, num, atol=1e-6, rtol=1e-4)

    def test_table_grad_is_sparse_and_correct(self):
        table, head = make_head(vocab=6, dim=2)
        hidden = RNG.normal(size=(4, 2))
        targets = np.array([1, 2, 1, 5])
        head(hidden, targets, pad_id=0)
        head.backward()
        g = table.weight.grad
        assert g is not None
        # Full-vocab mode: gradient covers all candidate rows.
        assert g.num_rows == 6
        # Check against dense formula: dW = softmax(HW^T) - onehot scaled.
        logits = hidden @ table.weight.data.T
        probs = F.softmax(logits)
        probs[np.arange(4), targets] -= 1
        expected = (probs / 4).T @ hidden
        np.testing.assert_allclose(g.to_dense(), expected, atol=1e-12)

    def test_padding_targets_excluded(self):
        table, head = make_head()
        hidden = RNG.normal(size=(3, 6))
        targets = np.array([0, 4, 0])  # two pads
        head(hidden, targets, pad_id=0)
        assert head.last_token_count == 1


class TestSampledMode:
    def test_candidate_set_shrinks_grad(self):
        table, head = make_head(vocab=1000, dim=4, num_sampled=10)
        hidden = RNG.normal(size=(5, 4))
        targets = RNG.integers(1, 1000, size=5)
        head(hidden, targets, pad_id=0)
        head.backward()
        g = table.weight.grad
        assert 0 < g.nnz_rows <= 10 + 5

    def test_candidates_include_targets(self):
        table, head = make_head(vocab=50, dim=4, num_sampled=3)
        hidden = RNG.normal(size=(4, 4))
        targets = np.array([7, 9, 11, 13])
        loss = head(hidden, targets, pad_id=0)
        head.backward()
        rows = set(table.weight.grad.indices.tolist())
        assert {7, 9, 11, 13} <= rows
        assert np.isfinite(loss)

    def test_backward_requires_forward(self):
        _, head = make_head()
        with pytest.raises(RuntimeError):
            head.backward()

    def test_loss_decreases_when_training_head(self):
        table, head = make_head(vocab=30, dim=8)
        from repro.optim import Adam

        opt = Adam([table.weight], lr=0.05)
        hidden = RNG.normal(size=(8, 8))
        targets = RNG.integers(1, 30, size=8)
        first = head(hidden, targets, pad_id=0)
        for _ in range(15):
            head.backward()
            opt.step()
            table.weight.zero_grad()
            last = head(hidden, targets, pad_id=0)
        assert last < first
