"""Multi-rank expansion: symmetric-shortcut validation + straggler study."""

import pytest

from repro.engine.step_simulator import simulate_step
from repro.engine.trainer_sim import make_context
from repro.models import GNMT8
from repro.sim import TaskGraph, execute
from repro.sim.multirank import NETWORK, expand_to_ranks
from repro.strategies import ALL_STRATEGIES, EmbRace, HorovodAllGather


@pytest.fixture(scope="module")
def ctx():
    return make_context(GNMT8, "rtx3090", 8)


class TestExpansion:
    def test_task_counts(self, ctx):
        graph = EmbRace().build_step(ctx)
        world = 4
        expanded = expand_to_ranks(graph, world)
        n_comm = sum(1 for t in graph.tasks.values() if t.resource == "comm")
        n_compute = len(graph) - n_comm
        assert len(expanded) == n_comm + world * n_compute

    def test_resources(self, ctx):
        expanded = expand_to_ranks(HorovodAllGather().build_step(ctx), 3)
        resources = expanded.resources()
        assert NETWORK in resources
        assert {f"compute:{r}" for r in range(3)} <= resources

    def test_skew_validation(self, ctx):
        graph = EmbRace().build_step(ctx)
        with pytest.raises(ValueError):
            expand_to_ranks(graph, 2, compute_skew=[1.0])
        with pytest.raises(ValueError):
            expand_to_ranks(graph, 2, compute_skew=[1.0, 0.0])
        with pytest.raises(ValueError):
            expand_to_ranks(graph, 0)

    def test_rejects_unknown_resource(self):
        g = TaskGraph()
        g.add_task("weird", 1.0, "gpu7")
        with pytest.raises(ValueError):
            expand_to_ranks(g, 2)


class TestSymmetricEquivalence:
    """With unit skew, the explicit multi-rank simulation reproduces the
    symmetric single-worker makespan — the shortcut the throughput
    experiments rely on is exact, not an approximation."""

    @pytest.mark.parametrize(
        "strategy", ["EmbRace", "Horovod-AllGather", "Horovod-AllReduce", "Parallax"]
    )
    def test_makespan_identical(self, ctx, strategy):
        strat = ALL_STRATEGIES[strategy]()
        symmetric = simulate_step(strat, ctx)
        expanded = expand_to_ranks(strat.build_step(ctx), world_size=4)
        trace = execute(expanded)
        assert trace.makespan == pytest.approx(symmetric.step_time, rel=1e-9)


class TestStragglers:
    def test_one_slow_rank_stalls_everyone(self, ctx):
        graph = EmbRace().build_step(ctx)
        base = execute(expand_to_ranks(graph, 4)).makespan
        straggler = execute(
            expand_to_ranks(graph, 4, compute_skew=[1.0, 1.0, 1.0, 1.5])
        ).makespan
        assert straggler > base
        # The collective barrier propagates the slowdown to the whole
        # step, not just 1/4 of it.
        assert straggler > base * 1.1

    def test_uniform_skew_scales_compute(self, ctx):
        graph = HorovodAllGather().build_step(ctx)
        base = execute(expand_to_ranks(graph, 2)).makespan
        double = execute(expand_to_ranks(graph, 2, compute_skew=[2.0, 2.0])).makespan
        assert double > base

    def test_fast_ranks_do_not_help(self, ctx):
        """Synchronous training runs at the slowest worker's pace: making
        three ranks faster without touching the fourth cannot beat the
        all-equal makespan."""
        graph = EmbRace().build_step(ctx)
        base = execute(expand_to_ranks(graph, 4)).makespan
        uneven = execute(
            expand_to_ranks(graph, 4, compute_skew=[0.5, 0.5, 0.5, 1.0])
        ).makespan
        assert uneven >= base * 0.99
