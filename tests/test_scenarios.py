"""Tests for repro.scenarios: the model x strategy x schedule matrix."""

import pytest

from repro.scenarios import (
    RealCheck,
    ScenarioCell,
    ScenarioReport,
    ScenarioSpec,
    run_matrix,
)


def tiny_spec(**overrides):
    kw = dict(
        models=("LM",),
        strategies=("EmbRace", "Horovod-AllReduce"),
        schedules=("data_parallel", "gpipe", "nested"),
        world_size=4,
        n_stages=2,
        n_microbatches=2,
        validate_real=False,
    )
    kw.update(overrides)
    return ScenarioSpec(**kw)


class TestSpec:
    def test_smoke_and_full_validate(self):
        assert len(ScenarioSpec.smoke().models) == 3
        full = ScenarioSpec.full()
        assert len(full.models) * len(full.strategies) * len(full.schedules) == 100

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            tiny_spec(models=("GPT-17",))

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            tiny_spec(schedules=("zigzag",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            tiny_spec(strategies=())

    def test_sim_steps_floor(self):
        with pytest.raises(ValueError, match="sim_steps"):
            tiny_spec(sim_steps=1)


class TestMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        return run_matrix(tiny_spec())

    def test_every_cell_present(self, report):
        assert len(report.cells) == 1 * 2 * 3
        for strategy in ("EmbRace", "Horovod-AllReduce"):
            for schedule in ("data_parallel", "gpipe", "nested"):
                cell = report.cell("LM", strategy, schedule)
                assert cell.step_time_s > 0
                assert 0.0 <= cell.stall_frac <= 1.0
                assert 0.0 <= cell.bubble_frac <= 1.0

    def test_missing_cell_raises(self, report):
        with pytest.raises(KeyError):
            report.cell("LM", "EmbRace", "1f1b")

    def test_embrace_beats_allreduce_everywhere(self, report):
        for schedule in ("data_parallel", "gpipe", "nested"):
            em = report.cell("LM", "EmbRace", schedule).step_time_s
            ar = report.cell("LM", "Horovod-AllReduce", schedule).step_time_s
            assert em < ar

    def test_nested_not_slower_than_gpipe_for_embrace(self, report):
        ne = report.cell("LM", "EmbRace", "nested").step_time_s
        gp = report.cell("LM", "EmbRace", "gpipe").step_time_s
        assert ne <= gp + 1e-12

    def test_report_round_trip(self, report):
        assert ScenarioReport.from_json(report.to_json()) == report

    def test_render_mentions_every_cell(self, report):
        text = report.render()
        assert "LM" in text and "EmbRace" in text and "nested" in text


class TestRealValidation:
    def test_real_twin_bit_identical(self):
        spec = tiny_spec(
            strategies=("EmbRace",),
            schedules=("data_parallel",),
            validate_real=True,
            real_world_size=2,
            real_steps=3,
        )
        report = run_matrix(spec)
        assert len(report.real_checks) == 1
        check = report.real_checks[0]
        assert check.identical
        assert check.max_abs_diff == 0.0

    def test_round_trip_preserves_checks(self):
        report = ScenarioReport(
            world_size=4, gpu_kind="rtx3090", n_stages=2, n_microbatches=2,
            cells=(
                ScenarioCell("LM", "EmbRace", "gpipe", 1e-3, 0.1, 0.2),
            ),
            real_checks=(RealCheck("LM", "EmbRace", True, 0.0),),
        )
        assert ScenarioReport.from_json(report.to_json()) == report


class TestCli:
    def test_scenarios_smoke_flags(self, capsys):
        from repro.cli import main

        code = main([
            "scenarios",
            "--models", "LM",
            "--strategies", "EmbRace",
            "--schedules", "data_parallel", "gpipe",
            "--world", "4", "--stages", "2", "--microbatches", "2",
            "--no-real",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario matrix" in out
        assert "gpipe" in out
