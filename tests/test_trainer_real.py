"""Real-execution training tests: the strongest Fig. 11 evidence.

EmbRace's full real pipeline (column-partitioned AlltoAll, Algorithm 1
split, modified Adam, lookup redistribution) trains **bit-identically**
to the Horovod-AllGather baseline for every model family.
"""

import numpy as np
import pytest

from repro.engine.trainer_real import RealTrainer
from repro.eval import bleu, perplexity, perplexity_curve, teacher_forced_argmax
from repro.models import BERT_BASE, GNMT8, LM, TRANSFORMER, build_model


def run_pair(config, steps=3, world=2, seed=5, **kw):
    ag = RealTrainer(config, strategy="allgather", world_size=world, steps=steps,
                     seed=seed, **kw).train()
    em = RealTrainer(config, strategy="embrace", world_size=world, steps=steps,
                     seed=seed, **kw).train()
    return ag, em


class TestBitEquivalence:
    @pytest.mark.parametrize("paper_cfg", [LM, GNMT8, TRANSFORMER, BERT_BASE],
                             ids=["LM", "GNMT-8", "Transformer", "BERT-base"])
    def test_embrace_equals_allgather(self, paper_cfg):
        ag, em = run_pair(paper_cfg.tiny())
        assert ag.losses == em.losses
        for key in ag.state:
            np.testing.assert_array_equal(ag.state[key], em.state[key], err_msg=key)

    def test_equivalence_three_workers(self):
        """Odd world sizes exercise uneven column shards."""
        ag, em = run_pair(GNMT8.tiny(), world=3, steps=2)
        for key in ag.state:
            np.testing.assert_array_equal(ag.state[key], em.state[key], err_msg=key)

    def test_equivalence_over_longer_run(self):
        ag, em = run_pair(LM.tiny(), steps=8)
        assert ag.losses == em.losses


class TestTrainingProgress:
    def test_loss_decreases(self):
        r = RealTrainer(GNMT8.tiny(), strategy="embrace", world_size=2,
                        steps=12, lr=5e-3, seed=0).train()
        first = np.mean(r.losses[:3])
        last = np.mean(r.losses[-3:])
        assert last < first

    def test_single_worker_degenerate(self):
        r = RealTrainer(LM.tiny(), strategy="embrace", world_size=1, steps=2).train()
        assert len(r.losses) == 2

    def test_tokens_counted(self):
        r = RealTrainer(LM.tiny(), strategy="allgather", world_size=2, steps=2).train()
        assert all(t > 0 for t in r.tokens_per_step)

    def test_comm_bytes_recorded(self):
        r = RealTrainer(LM.tiny(), strategy="embrace", world_size=2, steps=2).train()
        assert r.comm_bytes > 0

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            RealTrainer(LM.tiny(), strategy="magic")

    def test_predictions_recorded(self):
        r = RealTrainer(GNMT8.tiny(), strategy="allgather", world_size=2,
                        steps=2, record_predictions=True).train()
        assert len(r.predictions) == 2
        assert r.predictions[0].ndim == 2


class TestEvalMetrics:
    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(40.0)) == pytest.approx(40.0)
        with pytest.raises(ValueError):
            perplexity(-1)

    def test_perplexity_capped(self):
        assert np.isfinite(perplexity(1000.0))

    def test_perplexity_curve_smoothing(self):
        curve = perplexity_curve([np.log(4), np.log(16)], smooth=2)
        assert curve[0] == pytest.approx(4.0)
        assert curve[1] == pytest.approx(8.0)  # exp(mean(log4, log16))
        with pytest.raises(ValueError):
            perplexity_curve([1.0], smooth=0)

    def test_bleu_perfect_match(self):
        ref = [np.array([5, 6, 7, 8, 9])]
        assert bleu(ref, ref) == pytest.approx(100.0)

    def test_bleu_no_overlap(self):
        hyp = [np.array([1, 2, 3, 4])]
        ref = [np.array([10, 11, 12, 13])]
        assert bleu(hyp, ref) == 0.0

    def test_bleu_partial(self):
        hyp = [np.array([5, 6, 7, 99])]
        ref = [np.array([5, 6, 7, 8])]
        score = bleu(hyp, ref)
        assert 0 < score < 100

    def test_bleu_brevity_penalty(self):
        full = bleu([np.array([5, 6, 7, 8])], [np.array([5, 6, 7, 8])])
        short = bleu([np.array([5, 6])], [np.array([5, 6, 7, 8])])
        assert short < full

    def test_bleu_strips_padding(self):
        hyp = [np.array([5, 6, 0, 0])]
        ref = [np.array([5, 6])]
        assert bleu(hyp, ref) == pytest.approx(bleu([np.array([5, 6])], ref))

    def test_bleu_validation(self):
        with pytest.raises(ValueError):
            bleu([], [])
        with pytest.raises(ValueError):
            bleu([np.array([1])], [])

    def test_teacher_forced_argmax(self):
        cfg = GNMT8.tiny()
        model = build_model(cfg)
        from repro.engine.workload import batch_stream

        batch = next(iter(batch_stream(cfg, "rtx3090")))
        model.forward_backward(batch)
        preds = teacher_forced_argmax(model, batch)
        assert preds.shape == batch.targets[:, 1:].shape

    def test_teacher_forced_requires_logits(self):
        class NoLogits:
            pass

        with pytest.raises(ValueError):
            teacher_forced_argmax(NoLogits(), None)


class TestConvergenceCurves:
    """Fig. 11's actual claim: both strategies converge identically."""

    def test_ppl_curves_identical(self):
        ag, em = run_pair(LM.tiny(), steps=6, seed=11)
        assert perplexity_curve(ag.losses) == perplexity_curve(em.losses)

    def test_bleu_trajectories_identical(self):
        ag, em = run_pair(GNMT8.tiny(), steps=4, seed=11,
                          record_predictions=True)
        for p_ag, p_em in zip(ag.predictions, em.predictions):
            np.testing.assert_array_equal(p_ag, p_em)


class TestValidationLoop:
    def test_val_losses_recorded_and_decreasing(self):
        cfg = GNMT8.tiny()
        r = RealTrainer(
            cfg, strategy="embrace", world_size=2, steps=12, lr=5e-3,
            seed=1, eval_every=4, eval_batches=2,
        ).train()
        assert len(r.val_losses) == 3
        assert r.val_losses[-1] < r.val_losses[0]

    def test_val_losses_identical_across_strategies(self):
        """Bit-identical models produce bit-identical validation curves."""
        cfg = LM.tiny()
        kw = dict(world_size=2, steps=4, seed=2, eval_every=2)
        ag = RealTrainer(cfg, strategy="allgather", **kw).train()
        em = RealTrainer(cfg, strategy="embrace", **kw).train()
        assert ag.val_losses == em.val_losses

    def test_eval_every_validation(self):
        with pytest.raises(ValueError):
            RealTrainer(LM.tiny(), eval_every=0)


class TestDensifiedAllReduceStrategy:
    def test_converges_and_matches_allgather_closely(self):
        """The densified baseline is numerically equivalent up to float
        summation order (ring chunks vs rank-ordered sparse sums)."""
        cfg = GNMT8.tiny()
        kw = dict(world_size=2, steps=4, seed=3)
        ag = RealTrainer(cfg, strategy="allgather", **kw).train()
        ar = RealTrainer(cfg, strategy="allreduce", **kw).train()
        for key in ag.state:
            np.testing.assert_allclose(
                ag.state[key], ar.state[key], atol=1e-9, err_msg=key
            )

    def test_dense_format_moves_more_bytes(self):
        """§2.2's Fig. 1 claim, measured on real wire bytes: densified
        AllReduce sends the zeros, sparse strategies do not."""
        cfg = GNMT8.scaled(vocab=512, dim_divisor=32)
        kw = dict(world_size=4, steps=3, seed=0)
        dense_bytes = RealTrainer(cfg, strategy="allreduce", **kw).train().comm_bytes
        sparse_bytes = RealTrainer(cfg, strategy="allgather", **kw).train().comm_bytes
        embrace_bytes = RealTrainer(cfg, strategy="embrace", **kw).train().comm_bytes
        assert dense_bytes > sparse_bytes
        assert dense_bytes > embrace_bytes


class TestProcessBackend:
    """backend="process" trains bit-identically to the thread backend."""

    def test_backend_validation(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                RealTrainer(LM.tiny(), backend="mpi")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                RealTrainer(LM.tiny(), backend="process", transport="tcp")

    @pytest.mark.slow
    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_matches_thread_backend(self, transport):
        kw = dict(strategy="embrace", world_size=2, steps=3, seed=5)
        ref = RealTrainer(GNMT8.tiny(), **kw).train()
        got = RealTrainer(
            GNMT8.tiny(), backend="process", transport=transport, **kw
        ).train()
        assert got.losses == ref.losses
        for key in ref.state:
            np.testing.assert_array_equal(got.state[key], ref.state[key],
                                          err_msg=key)

    @pytest.mark.slow
    def test_allgather_strategy_on_shm(self):
        kw = dict(strategy="allgather", world_size=2, steps=3, seed=5)
        ref = RealTrainer(GNMT8.tiny(), **kw).train()
        got = RealTrainer(GNMT8.tiny(), backend="process", **kw).train()
        assert got.losses == ref.losses
        for key in ref.state:
            np.testing.assert_array_equal(got.state[key], ref.state[key],
                                          err_msg=key)


class TestOverlapScheduling:
    """The async comm engine (overlap=True, the default) must train
    bit-identically to inline execution of the same work items
    (overlap=False): same chunk bounds, same ring reductions, same
    per-row optimizer-op order for the carried-over delayed parts."""

    @staticmethod
    def _pair(cfg, **kw):
        sync = RealTrainer(cfg, overlap=False, **kw).train()
        over = RealTrainer(cfg, overlap=True, **kw).train()
        return sync, over

    @pytest.mark.parametrize("strategy", ["allgather", "allreduce", "embrace"])
    def test_overlap_bit_identical_to_sync(self, strategy):
        sync, over = self._pair(
            GNMT8.tiny(), strategy=strategy, world_size=2, steps=3, seed=5
        )
        assert sync.losses == over.losses
        for key in sync.state:
            np.testing.assert_array_equal(sync.state[key], over.state[key],
                                          err_msg=key)

    def test_overlap_with_validation_and_three_workers(self):
        """Odd shards + mid-run validation: the delayed parts must be
        flushed before every eval pass for the curves to match."""
        sync, over = self._pair(
            GNMT8.tiny(), strategy="embrace", world_size=3, steps=4,
            seed=2, eval_every=2,
        )
        assert sync.losses == over.losses
        assert sync.val_losses == over.val_losses
        for key in sync.state:
            np.testing.assert_array_equal(sync.state[key], over.state[key],
                                          err_msg=key)

    def test_overlap_with_dgc(self):
        """DGC's AllGather rides the scheduler facade too."""
        sync, over = self._pair(
            GNMT8.tiny(), strategy="embrace", world_size=2, steps=3,
            seed=4, dgc_ratio=0.25,
        )
        assert sync.losses == over.losses
        for key in sync.state:
            np.testing.assert_array_equal(sync.state[key], over.state[key],
                                          err_msg=key)

    def test_overlap_under_faults_matches_clean_sync(self):
        """Drops/delays/reordering below the scheduler change timing,
        never numerics: faulty overlapped == clean synchronous."""
        from repro.faults import FaultPlan

        plan = FaultPlan(
            seed=3, delay_prob=0.3, delay_s=0.002, drop_prob=0.1,
            reorder_prob=0.2, reorder_s=0.003, recv_deadline=30.0,
        )
        kw = dict(strategy="embrace", world_size=2, steps=3, seed=5)
        clean = RealTrainer(GNMT8.tiny(), overlap=False, **kw).train()
        faulty = RealTrainer(
            GNMT8.tiny(), overlap=True, fault_plan=plan, **kw
        ).train()
        assert clean.losses == faulty.losses
        for key in clean.state:
            np.testing.assert_array_equal(clean.state[key], faulty.state[key],
                                          err_msg=key)

    @pytest.mark.slow
    def test_overlap_on_process_backend(self):
        kw = dict(strategy="embrace", world_size=2, steps=3, seed=5)
        ref = RealTrainer(GNMT8.tiny(), overlap=False, **kw).train()
        got = RealTrainer(
            GNMT8.tiny(), backend="process", overlap=True, **kw
        ).train()
        assert got.losses == ref.losses
        for key in ref.state:
            np.testing.assert_array_equal(got.state[key], ref.state[key],
                                          err_msg=key)


def _runtime_worker(comm, deferred):
    """Drive one EmbraceTableRuntime for a few synthetic steps, either
    fused (apply_gradient) or with the delayed part genuinely carried
    across the step boundary like the overlapped trainer does."""
    from repro.engine.embrace_runtime import EmbraceTableRuntime
    from repro.nn.embedding import Embedding
    from repro.tensors import SparseRows

    vocab, dim, steps = 48, 8, 4
    table = Embedding(vocab, dim, rng=np.random.default_rng(7), name="emb")
    rt = EmbraceTableRuntime(comm, table)
    inv = 1.0 / comm.world_size
    rng = np.random.default_rng(100 + comm.rank)
    ids = [rng.integers(0, vocab, size=12) for _ in range(steps)]
    grads = [
        SparseRows(i, rng.normal(size=(len(i), dim)), vocab) for i in ids
    ]
    pending = None
    for t in range(steps):
        nxt = ids[t + 1] if t + 1 < steps else None
        global_next = (
            np.concatenate(comm.allgather(nxt)) if nxt is not None else None
        )
        if deferred:
            if pending is not None:
                rt.apply_part(pending, final=True)  # step-boundary flush
                pending = None
            prior, delayed = rt.split(grads[t], ids[t], global_next)
            rt.apply_part(rt.exchange(comm, prior, inv), final=False)
            pending = rt.exchange(comm, delayed, inv)
        else:
            rt.apply_gradient(grads[t], ids[t], global_next, scale=inv)
        if nxt is not None:
            rt.refresh_rows(nxt)  # deferred mode: pending still unapplied
    if pending is not None:
        rt.apply_part(pending, final=True)
    return rt.gather_full_table()


class TestDelayedStepBoundary:
    def test_deferred_delayed_matches_fused_reference(self):
        """Carrying the delayed part across the step boundary (through a
        refresh_rows that must not read its rows) reproduces the fused
        EmbraceAdam single-update sequence bit-exactly."""
        from repro.comm import run_threaded

        fused = run_threaded(2, _runtime_worker, False)
        deferred = run_threaded(2, _runtime_worker, True)
        for f, d in zip(fused, deferred):
            np.testing.assert_array_equal(f, d)
        np.testing.assert_array_equal(fused[0], fused[1])
