"""Tests for workload measurement, throughput simulation and perf model."""

import pytest

from repro.cluster import RTX2080, RTX3090
from repro.engine import measure_workload, simulate_training
from repro.engine.trainer_sim import make_cluster
from repro.engine.workload import batch_stream, cached_workload
from repro.models import BERT_BASE, GNMT8, LM, TRANSFORMER, block_specs
from repro.perf import ComputeEstimator
from repro.perf.flops import (
    attention_flops,
    embedding_lookup_bytes,
    ffn_flops,
    linear_flops,
    lstm_layer_flops,
    transformer_layer_flops,
)
from repro.strategies import EmbRace, HorovodAllGather


class TestFlops:
    def test_linear(self):
        assert linear_flops(10, 4, 8) == 2 * 10 * 4 * 8

    def test_lstm_dominated_by_gates(self):
        f = lstm_layer_flops(100, 64, 128)
        assert f > 2 * 100 * (64 + 128) * 4 * 128

    def test_attention_quadratic_in_seq(self):
        short = attention_flops(1, 64, 256)
        long = attention_flops(1, 128, 256)
        # Projections are linear, score matmuls quadratic.
        assert long > 2 * short

    def test_cross_attention_more_expensive(self):
        plain = transformer_layer_flops(2, 32, 256, 1024)
        cross = transformer_layer_flops(2, 32, 256, 1024, cross_attention=True)
        assert cross > plain

    def test_ffn(self):
        assert ffn_flops(10, 8, 32) == linear_flops(10, 8, 32) + linear_flops(10, 32, 8)

    def test_embedding_bytes(self):
        assert embedding_lookup_bytes(100, 64) == 2 * 100 * 64 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_flops(0, 4, 8)


class TestComputeEstimator:
    def test_bp_twice_fp(self):
        est = ComputeEstimator(RTX3090, batch_size=8, src_seq_len=16, tgt_seq_len=16)
        blocks = block_specs(GNMT8)
        t = est.block_time(blocks[3])  # a dense LSTM block
        overhead = RTX3090.kernel_overhead
        assert (t.bp - overhead) == pytest.approx(2 * (t.fp - overhead), rel=1e-6)

    def test_embedding_memory_bound(self):
        est = ComputeEstimator(RTX3090, batch_size=8, src_seq_len=16, tgt_seq_len=16)
        emb_block = block_specs(GNMT8)[0]
        t = est.block_time(emb_block)
        expected = RTX3090.memory_time(2 * 8 * 16 * 1024 * 4)
        assert t.fp == pytest.approx(expected)

    def test_slower_gpu_slower_blocks(self):
        fast = ComputeEstimator(RTX3090, 8, 16, 16)
        slow = ComputeEstimator(RTX2080, 8, 16, 16)
        blocks = block_specs(TRANSFORMER)
        assert slow.step_compute_time(blocks) > fast.step_compute_time(blocks)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeEstimator(RTX3090, batch_size=0, src_seq_len=1, tgt_seq_len=1)


class TestWorkload:
    def test_batch_stream_families(self):
        for cfg in (LM.tiny(), GNMT8.tiny(), BERT_BASE.tiny()):
            b = next(iter(batch_stream(cfg, "rtx3090")))
            assert b.num_tokens > 0

    def test_transformer_token_budget_stream(self):
        b = next(iter(batch_stream(TRANSFORMER, "rtx3090")))
        # ~5120 max tokens per batch at ~30 tokens/sentence.
        assert 20 < b.batch_size < 400

    def test_measure_workload_tables(self):
        w = measure_workload(GNMT8, "rtx3090", world_size=2, n_steps=2)
        assert set(w.tables) == {"encoder_embedding", "decoder_embedding"}
        for s in w.tables.values():
            assert s.original_rows >= s.coalesced_rows >= s.prior_rows

    def test_cached_workload_identity(self):
        a = cached_workload("GNMT-8", "rtx3090", 4)
        b = cached_workload("GNMT-8", "rtx3090", 4)
        assert a is b

    def test_grad_sparsity_matches_paper_scale(self):
        """§4.1.2: the four models' gradient sparsities are high (the LM
        above 99%, others above ~50%)."""
        expected_min = {"LM": 0.99, "GNMT-8": 0.80, "Transformer": 0.80,
                        "BERT-base": 0.55}
        for name, cfg in (("LM", LM), ("GNMT-8", GNMT8),
                          ("Transformer", TRANSFORMER), ("BERT-base", BERT_BASE)):
            w = cached_workload(name, "rtx3090", 1)
            density = max(s.density for s in w.tables.values())
            assert 1 - density >= expected_min[name], name


class TestSimulatedTraining:
    def test_cluster_scaling_layout(self):
        assert make_cluster("rtx3090", 4).num_nodes == 1
        assert make_cluster("rtx3090", 16).num_nodes == 4
        with pytest.raises(ValueError):
            make_cluster("a100", 4)

    def test_throughput_positive_and_scales(self):
        t4 = simulate_training(GNMT8, "rtx3090", 4, EmbRace())
        t16 = simulate_training(GNMT8, "rtx3090", 16, EmbRace())
        assert 0 < t4.tokens_per_sec < t16.tokens_per_sec

    def test_scaling_sublinear(self):
        t4 = simulate_training(GNMT8, "rtx3090", 4, EmbRace())
        t16 = simulate_training(GNMT8, "rtx3090", 16, EmbRace())
        assert t16.tokens_per_sec < 4.05 * t4.tokens_per_sec

    def test_embrace_beats_allgather_at_16(self):
        for cfg in (LM, GNMT8, TRANSFORMER, BERT_BASE):
            emb = simulate_training(cfg, "rtx3090", 16, EmbRace())
            ag = simulate_training(cfg, "rtx3090", 16, HorovodAllGather())
            assert emb.tokens_per_sec > ag.tokens_per_sec, cfg.name

    def test_report_invariants(self):
        r = simulate_training(GNMT8, "rtx3090", 8, EmbRace())
        rep = r.report
        assert rep.step_time >= rep.compute_time
        assert rep.computation_stall >= 0
        assert 0 <= rep.overlap_ratio <= 1


class TestSteadyStateTraining:
    def test_steady_state_at_least_single_step(self):
        from repro.engine.trainer_sim import simulate_training_steady

        single = simulate_training(LM, "rtx3090", 16, EmbRace())
        steady = simulate_training_steady(LM, "rtx3090", 16, EmbRace())
        assert steady.tokens_per_sec >= single.tokens_per_sec - 1e-9

    def test_embrace_still_wins_steady_state(self):
        from repro.engine.trainer_sim import simulate_training_steady

        emb = simulate_training_steady(GNMT8, "rtx3090", 16, EmbRace())
        ag = simulate_training_steady(GNMT8, "rtx3090", 16, HorovodAllGather())
        assert emb.tokens_per_sec > ag.tokens_per_sec
