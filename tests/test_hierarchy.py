"""Two-level collectives, topology plumbing, and hybrid scaling.

Bit-identity of the hierarchical wires against their flat references —
including non-power-of-2 and asymmetric node shapes — plus fault
injection scoped to the inter-node level, the per-level alpha-beta
probe/profile, and the hybrid-mode replay ladder.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.comm import (
    NodeTopology,
    SchedKnobs,
    as_topology,
    node_comms,
    open_group,
    two_level_allreduce,
    two_level_allreduce_hot_rows,
    two_level_allreduce_sparse,
    two_level_alltoall_shards,
)
from repro.comm.sparse import (
    allreduce_hot_rows,
    allreduce_sparse_via_allgather,
    alltoall_column_shards,
)
from repro.tensors import SparseRows

TOPOLOGIES = [
    pytest.param(NodeTopology.symmetric(2, 2), id="2x2"),
    pytest.param(NodeTopology.of_sizes((3, 3)), id="3x3-nonpow2"),
    pytest.param(NodeTopology.of_sizes((3, 2)), id="3+2-asymmetric"),
]


def _rank_grad(rank: int, num_rows: int = 23, dim: int = 10) -> SparseRows:
    rng = np.random.default_rng(100 + rank)
    n = int(rng.integers(3, 9))
    ids = rng.choice(num_rows, size=n, replace=False)
    return SparseRows(
        np.sort(ids), rng.standard_normal((n, dim)).astype(np.float32), num_rows
    )


class TestTwoLevelBitIdentity:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_dense_allreduce_matches_flat(self, topology):
        world = topology.world_size

        def worker(comm):
            rng = np.random.default_rng(comm.rank)
            x = rng.standard_normal(37).astype(np.float32)
            flat = comm.allreduce(x)
            hier = two_level_allreduce(comm, x, topology)
            return np.array_equal(flat, hier)

        with open_group(world, backend="thread") as g:
            assert all(g.run(worker))

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_dense_allreduce_out_buffer(self, topology):
        def worker(comm):
            x = np.full(11, float(comm.rank + 1), dtype=np.float64)
            out = np.empty_like(x)
            res = two_level_allreduce(comm, x, topology, out=out)
            return res is out and np.array_equal(out, comm.allreduce(x))

        with open_group(topology.world_size, backend="thread") as g:
            assert all(g.run(worker))

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_alltoall_shards_matches_grouped_flat(self, topology):
        """The node-coalesced AlltoAll executes the same nested fold as
        the flat collective with ``fold_groups=node_sizes`` — exactly."""
        world = topology.world_size

        def worker(comm):
            grad = _rank_grad(comm.rank)
            ref = alltoall_column_shards(
                comm, grad, fold_groups=topology.node_sizes
            )
            got = two_level_alltoall_shards(comm, grad, topology)
            return (
                np.array_equal(ref.indices, got.indices)
                and np.array_equal(ref.values, got.values)
            )

        with open_group(world, backend="thread") as g:
            assert all(g.run(worker))

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_sparse_allreduce_matches_grouped_flat(self, topology):
        def worker(comm):
            grad = _rank_grad(comm.rank)
            ref = allreduce_sparse_via_allgather(
                comm, grad, fold_groups=topology.node_sizes
            )
            got = two_level_allreduce_sparse(comm, grad, topology)
            return (
                np.array_equal(ref.indices, got.indices)
                and np.array_equal(ref.values, got.values)
            )

        with open_group(topology.world_size, backend="thread") as g:
            assert all(g.run(worker))

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_hot_rows_matches_grouped_flat(self, topology):
        hot = np.array([1, 4, 7, 9, 15], dtype=np.int64)

        def worker(comm):
            # The hot lane only carries rows from the hot set.
            rng = np.random.default_rng(100 + comm.rank)
            ids = np.sort(rng.choice(hot, size=3, replace=False))
            grad = SparseRows(
                ids, rng.standard_normal((3, 10)).astype(np.float32), 23
            )
            ref = allreduce_hot_rows(
                comm, hot, grad, fold_groups=topology.node_sizes
            )
            got = two_level_allreduce_hot_rows(comm, hot, grad, topology)
            return (
                np.array_equal(ref.indices, got.indices)
                and np.array_equal(ref.values, got.values)
            )

        with open_group(topology.world_size, backend="thread") as g:
            assert all(g.run(worker))

    def test_single_node_topology_falls_back_to_flat(self):
        topo = NodeTopology.of_sizes((3,))

        def worker(comm):
            x = np.full(9, float(comm.rank), dtype=np.float32)
            return np.array_equal(
                two_level_allreduce(comm, x, topo), comm.allreduce(x)
            )

        with open_group(3, backend="thread") as g:
            assert all(g.run(worker))

    def test_world_mismatch_rejected(self):
        topo = NodeTopology.symmetric(2, 2)

        def worker(comm):
            try:
                two_level_allreduce(comm, np.zeros(4, np.float32), topo)
            except ValueError:
                return True
            return False

        with open_group(2, backend="thread") as g:
            assert all(g.run(worker))


class TestTrainerBitIdentity:
    """Real training over asymmetric / non-power-of-2 topologies: the
    two-level wires must reproduce the flat loss curve bit for bit."""

    @pytest.mark.parametrize(
        "sizes", [(3, 2), (3, 3)], ids=["3+2", "3x3"]
    )
    def test_hier_vs_flat_losses(self, sizes):
        from repro.engine.run import RunConfig, run
        from repro.models.config import GNMT8

        topo = NodeTopology.of_sizes(sizes)
        base = RunConfig(
            model=GNMT8.tiny(),
            mode="real",
            world_size=topo.world_size,
            steps=2,
            backend="thread",
            topology=topo,
        )
        losses = {}
        for name, hier in (("hier", True), ("flat", False)):
            knobs = SchedKnobs(
                hier_dense=hier, hier_sparse=hier, hier_hot=hier
            )
            losses[name] = run(
                dataclasses.replace(base, knobs=knobs)
            ).raw.losses
        assert losses["hier"] == losses["flat"]


class TestInterLevelFaults:
    """FaultPlan injection scoped to the inter-node level only: drops on
    the leader ring retry to completion while intra-node traffic stays
    untouched, and every collective still lands bit-exact."""

    def _faulty_nc(self, comm, topology, stats_out):
        from repro.faults import FaultPlan
        from repro.faults.inject import FaultyCommunicator

        plan = FaultPlan(seed=7, drop_prob=0.3)

        def wrap(inter):
            faulty = FaultyCommunicator(inter, plan)
            stats_out[comm.rank] = faulty.stats
            return faulty

        return node_comms(comm, topology, inter_wrap=wrap)

    def test_dense_exact_under_inter_drops(self):
        topology = NodeTopology.symmetric(2, 2)
        stats: dict[int, object] = {}

        def worker(comm):
            nc = self._faulty_nc(comm, topology, stats)
            results = []
            for trial in range(4):
                x = np.full(31, float(comm.rank + trial + 1), np.float32)
                hier = two_level_allreduce(comm, x, topology, comms=nc)
                results.append(np.array_equal(hier, comm.allreduce(x)))
            return all(results)

        with open_group(4, backend="thread") as g:
            assert all(g.run(worker))
        assert set(stats) == {0, 2}  # leaders only carry the faulty wire
        assert sum(s.retransmits for s in stats.values()) > 0
        assert all(s.lost == 0 for s in stats.values())

    def test_sparse_exact_under_inter_drops(self):
        topology = NodeTopology.of_sizes((3, 2))
        stats: dict[int, object] = {}

        def worker(comm):
            nc = self._faulty_nc(comm, topology, stats)
            grad = _rank_grad(comm.rank)
            ref = alltoall_column_shards(
                comm, grad, fold_groups=topology.node_sizes
            )
            got = two_level_alltoall_shards(comm, grad, topology, comms=nc)
            return (
                np.array_equal(ref.indices, got.indices)
                and np.array_equal(ref.values, got.values)
            )

        with open_group(5, backend="thread") as g:
            assert all(g.run(worker))
        assert set(stats) == {0, 3}


class TestProbeAndProfile:
    def test_probe_two_level_fits_both_links(self):
        from repro.tune import TunedProfile, probe_two_level

        topo = NodeTopology.symmetric(2, 2)
        profile = probe_two_level(
            topo, sizes_bytes=(4_096, 65_536, 262_144), iters=3
        )
        assert profile.two_level
        assert set(profile.links) == {"intra", "inter"}
        assert profile.links["intra"].world_size == 2
        assert profile.links["inter"].world_size == 2
        for link in profile.links.values():
            assert link.bandwidth_Bps > 0 and link.latency_s >= 0
        # JSON round trip preserves the two-level structure.
        clone = TunedProfile.from_json(profile.to_json())
        assert clone.two_level
        assert clone.meta["gpus_per_node"] == 2
        assert clone.links["inter"].bandwidth_Bps == pytest.approx(
            profile.links["inter"].bandwidth_Bps
        )

    def test_profile_to_cluster_grows_by_nodes(self):
        from repro.tune import probe_two_level

        topo = NodeTopology.symmetric(2, 2)
        profile = probe_two_level(
            topo, sizes_bytes=(4_096, 65_536, 262_144), iters=3
        )
        base = profile.to_cluster()
        assert (base.num_nodes, base.gpus_per_node) == (2, 2)
        grown = profile.to_cluster(world_size=1024)
        assert grown.num_nodes == 512
        assert grown.gpus_per_node == 2
        assert grown.inter_bw == pytest.approx(base.inter_bw)
        cost = profile.cost_model(world_size=64)
        assert cost.cluster.world_size == 64
        assert cost.cluster.multi_node

    def test_probe_rejects_flat_topology(self):
        from repro.tune import probe_two_level

        with pytest.raises(ValueError):
            probe_two_level(NodeTopology.of_sizes((4,)))

    def test_hierarchical_pricing_shrinks_inter_bytes(self):
        from repro.cluster import rtx3090_cluster
        from repro.collectives.cost import CostModel

        cost = CostModel(rtx3090_cluster(num_nodes=4, gpus_per_node=4))
        nbytes = 1 << 20
        # Dense: (2m-1)*n hierarchical vs m*2(N-1)/N*n flat.
        assert cost.inter_bytes_allreduce(nbytes, True) < (
            cost.inter_bytes_allreduce(nbytes, False)
        )
        # Sparse: dedup scales the crossing payload.
        flat = cost.inter_bytes_alltoall(nbytes, False)
        assert cost.inter_bytes_alltoall(nbytes, True, 0.5) == pytest.approx(
            0.5 * flat
        )
        assert cost.inter_bytes_allgather(nbytes, True, 0.5) < (
            cost.inter_bytes_allgather(nbytes, False)
        )
        # Hierarchical collective costs are positive and finite.
        for c in (
            cost.hierarchical_allreduce(nbytes),
            cost.hierarchical_alltoall(nbytes, node_dedup=0.5),
            cost.hierarchical_allgather(nbytes, node_dedup=0.5),
        ):
            assert 0 < c.seconds < float("inf")
        with pytest.raises(ValueError):
            cost.hierarchical_alltoall(nbytes, node_dedup=0.0)

    def test_single_node_cost_falls_back_to_flat(self):
        from repro.cluster import rtx3090_cluster
        from repro.collectives.cost import CostModel

        cost = CostModel(rtx3090_cluster(num_nodes=1, gpus_per_node=4))
        nbytes = 1 << 16
        assert cost.hierarchical_allreduce(nbytes).seconds == pytest.approx(
            cost.allreduce(nbytes).seconds
        )
        assert cost.inter_bytes_allreduce(nbytes, True) == 0.0


class TestHybridMode:
    def test_sim_world_ladder(self):
        from repro.engine.hybrid import DEFAULT_SIM_WORLDS, sim_world_ladder

        assert sim_world_ladder(None) == DEFAULT_SIM_WORLDS
        assert sim_world_ladder(256) == (64, 128, 256)
        assert sim_world_ladder(16) == (16,)
        assert sim_world_ladder([32, 96]) == (32, 96)
        with pytest.raises(ValueError):
            sim_world_ladder(1)
        with pytest.raises(ValueError):
            sim_world_ladder([])

    def test_measure_node_dedup_bounds(self):
        from repro.engine.workload import measure_node_dedup
        from repro.models.config import GNMT8

        topo = NodeTopology.symmetric(2, 2)
        d = measure_node_dedup(GNMT8.tiny(), topo, n_steps=3)
        assert 0.5 <= d <= 1.0  # union >= max member, sum <= 2*max
        # Single-rank nodes cannot dedup anything.
        flat = measure_node_dedup(
            GNMT8.tiny(), NodeTopology.of_sizes((1, 1, 1, 1)), n_steps=3
        )
        assert flat == pytest.approx(1.0)

    def test_search_space_hier_axis(self):
        from repro.tune import SearchSpace

        space = SearchSpace(
            chunk_elems=(16_384,),
            max_chunks=(4,),
            bucket_elems=(65_536,),
            hier=(None, True, False),
        )
        cands = list(space.candidates())
        assert len(cands) == 3
        hier_knobs = {c.knobs.hier_dense for c in cands}
        assert hier_knobs == {None, True, False}
        labels = {c.label() for c in cands}
        assert any("hier" in lb for lb in labels)
        assert any("flat" in lb for lb in labels)

    def test_workload_scaled_to(self):
        from repro.tune import MeasuredWorkload, TableLoad

        w = MeasuredWorkload(
            world_size=4,
            fwd_bwd_s=0.01,
            optimizer_s=0.001,
            dense_param_sizes=((0.0, 1000),),
            tables=(
                TableLoad(
                    name="t",
                    prior_bytes=100.0,
                    delayed_bytes=50.0,
                    coalesced_bytes=150.0,
                    dense_bytes=1000.0,
                    delayed_rows=10.0,
                    ids_bytes=80.0,
                    lookup_bytes=400.0,
                    vocab_rows=64.0,
                ),
            ),
            measured_step_s=0.02,
            measured_stall_frac=0.1,
        )
        scaled = w.scaled_to(16)
        assert scaled.world_size == 16
        # Lookups fan in from every rank; per-rank payloads are weak-scaled.
        assert scaled.tables[0].lookup_bytes == pytest.approx(1600.0)
        assert scaled.tables[0].prior_bytes == pytest.approx(100.0)
        assert w.scaled_to(4) is w

    def test_run_hybrid_smoke(self):
        from repro.engine.hybrid import run_hybrid
        from repro.engine.run import RunConfig
        from repro.models.config import GNMT8
        from repro.tune import SMOKE_SIZES_BYTES

        res = run_hybrid(
            RunConfig(
                model=GNMT8.tiny(),
                mode="hybrid",
                world_size=4,
                steps=2,
                backend="thread",
                sim_world=(8, 16),
            ),
            probe_sizes_bytes=SMOKE_SIZES_BYTES,
            probe_iters=3,
        )
        assert res.mode == "hybrid"
        m = res.metrics
        assert m["losses_identical"] == 1.0
        assert 0.0 < m["node_dedup"] <= 1.0
        assert 0.0 < m["profile_exchange_ratio"] <= 1.0
        report = res.raw
        assert report.profile.two_level
        assert [p.world_size for p in report.curve] == [8, 16]
        assert all(p.num_nodes == p.world_size // 2 for p in report.curve)
        assert res.trace is not None  # twins run traced

    def test_run_hybrid_rejects_bad_shapes(self):
        from repro.engine.hybrid import run_hybrid
        from repro.engine.run import RunConfig
        from repro.models.config import GNMT8

        with pytest.raises(ValueError, match="mode"):
            run_hybrid(RunConfig(model=GNMT8.tiny(), mode="real"))
        with pytest.raises(ValueError, match="even world_size"):
            run_hybrid(
                RunConfig(model=GNMT8.tiny(), mode="hybrid", world_size=3)
            )
        with pytest.raises(ValueError, match="multi-node"):
            run_hybrid(
                RunConfig(
                    model=GNMT8.tiny(),
                    mode="hybrid",
                    world_size=4,
                    topology=NodeTopology.of_sizes((4,)),
                )
            )

    def test_scale_bench_model_is_sparse_dominated(self):
        from repro.engine.hybrid import scale_bench_model

        cfg = scale_bench_model()
        dense_trunk = cfg.hidden_dim
        assert dense_trunk <= 8
        assert all(t.dim == 64 for t in cfg.tables)
        assert cfg.batch_size("rtx3090") == 96


class TestTopologyHelpers:
    def test_as_topology_passthrough(self):
        topo = NodeTopology.symmetric(2, 2)
        assert as_topology(topo) is topo
        assert as_topology(None) is None
        assert as_topology(topo.to_dict()).nodes == topo.nodes
        with pytest.raises(TypeError):
            as_topology("2x2")

    def test_round_trip(self):
        topo = NodeTopology.of_sizes((3, 2), inter_latency=1e-4)
        clone = NodeTopology.from_dict(topo.to_dict())
        assert clone.nodes == topo.nodes

    def test_deprecated_hierarchical_allreduce_shim(self):
        from repro.comm.algorithms import hierarchical_allreduce

        def worker(comm):
            x = np.full(8, float(comm.rank + 1), np.float32)
            return hierarchical_allreduce(comm, x, 2)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with open_group(4, backend="thread") as g:
                outs = g.run(worker)
        assert any("deprecated" in str(w.message).lower() for w in caught)
        assert np.array_equal(outs[0], np.full(8, 10.0, np.float32))
