"""Bit-identity of every collective across the three wire paths.

The same collective algorithms run over the thread backend, the legacy
pickle/queue process transport, and the zero-copy shared-memory
transport.  Gradients must not depend on which wire moved them, so every
result here is compared with ``==`` (bitwise), never ``allclose`` — and
the equivalence must survive fault injection (drops with retransmission,
delays with reordering), which forces copies where zero-copy would race.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    allgather_sparse,
    alltoall_column_shards,
    open_group,
    payload_nbytes,
    run_threaded,
)
from repro.comm.algorithms import (
    alltoallv,
    gather,
    hierarchical_allreduce,
    reduce_scatter,
    scatter,
    tree_allreduce,
)
from repro.faults.inject import (
    run_multiprocess_with_faults,
    run_threaded_with_faults,
)
from repro.faults.plan import FaultPlan
from repro.tensors import SparseRows

WORLD = 4


def _payload(rank: int, dtype=np.float32, n: int = 1000) -> np.ndarray:
    rng = np.random.default_rng(100 + rank)
    return rng.normal(size=n).astype(dtype)


def _sparse(rank: int, rows: int = 64, dim: int = 8) -> SparseRows:
    rng = np.random.default_rng(200 + rank)
    return SparseRows(
        rng.integers(0, rows, size=rows // 2),
        rng.normal(size=(rows // 2, dim)).astype(np.float32),
        rows,
    )


# Runner functions are module-level so the persistent process groups can
# dispatch them by pickled reference.
def run_allreduce(comm, dtype_str):
    return comm.allreduce(_payload(comm.rank, np.dtype(dtype_str)))


def run_allreduce_out(comm):
    data = _payload(comm.rank)
    out = np.empty_like(data)
    ret = comm.allreduce(data, out=out)
    return ret, ret is out


def run_allreduce_inplace(comm):
    data = _payload(comm.rank)
    comm.allreduce(data, out=data)
    return data


def run_reduce_scatter(comm):
    return reduce_scatter(comm, _payload(comm.rank))


def run_tree_allreduce(comm):
    return tree_allreduce(comm, _payload(comm.rank))


def run_hierarchical(comm):
    return hierarchical_allreduce(comm, _payload(comm.rank), gpus_per_node=2)


def run_allgather(comm):
    return comm.allgather(_payload(comm.rank, n=37))


def run_broadcast(comm):
    obj = _payload(0) if comm.rank == 0 else None
    return comm.broadcast(obj, root=0)


def run_alltoall(comm):
    blocks = [
        _payload(comm.rank * comm.world_size + dst, n=23)
        for dst in range(comm.world_size)
    ]
    return comm.alltoall(blocks)


def run_alltoallv(comm):
    rng = np.random.default_rng(comm.rank)
    blocks = [
        rng.normal(size=(dst + 1, 3)).astype(np.float32)
        for dst in range(comm.world_size)
    ]
    return alltoallv(comm, blocks)


def run_gather_scatter(comm):
    gathered = gather(comm, _payload(comm.rank, n=11), root=1)
    objs = (
        [_payload(50 + r, n=7) for r in range(comm.world_size)]
        if comm.rank == 1
        else None
    )
    mine = scatter(comm, objs, root=1)
    return gathered, mine


def run_sparse_allgather(comm):
    return allgather_sparse(comm, _sparse(comm.rank))


def run_sparse_alltoall(comm):
    return alltoall_column_shards(comm, _sparse(comm.rank))


def run_mixed_tuple(comm):
    """Tuple-of-arrays + scalars + dict: the multi-frame wire format."""
    msg = (
        _payload(comm.rank, n=17),
        {"rank": comm.rank, "ids": np.arange(comm.rank + 1)},
        "tag",
    )
    return comm.allgather(msg)


RUNNERS = [
    ("allreduce_f32", run_allreduce, ("<f4",)),
    ("allreduce_f64", run_allreduce, ("<f8",)),
    ("allreduce_out", run_allreduce_out, ()),
    ("allreduce_inplace", run_allreduce_inplace, ()),
    ("reduce_scatter", run_reduce_scatter, ()),
    ("tree_allreduce", run_tree_allreduce, ()),
    ("hierarchical", run_hierarchical, ()),
    ("allgather", run_allgather, ()),
    ("broadcast", run_broadcast, ()),
    ("alltoall", run_alltoall, ()),
    ("alltoallv", run_alltoallv, ()),
    ("gather_scatter", run_gather_scatter, ()),
    ("sparse_allgather", run_sparse_allgather, ()),
    ("sparse_alltoall", run_sparse_alltoall, ()),
    ("mixed_tuple", run_mixed_tuple, ()),
]


def _flatten(obj) -> list[np.ndarray]:
    """Every ndarray reachable inside ``obj``, in deterministic order."""
    if isinstance(obj, np.ndarray):
        return [obj]
    if isinstance(obj, SparseRows):
        return [obj.indices, obj.values]
    if isinstance(obj, (tuple, list)):
        return [a for x in obj for a in _flatten(x)]
    if isinstance(obj, dict):
        return [a for k in sorted(obj) for a in _flatten(obj[k])]
    return []


def assert_bit_identical(a, b) -> None:
    fa, fb = _flatten(a), _flatten(b)
    assert len(fa) == len(fb)
    for x, y in zip(fa, fb):
        assert x.dtype == y.dtype
        assert x.shape == y.shape
        assert np.array_equal(x, y)


@pytest.fixture(scope="module")
def shm_group():
    with open_group(WORLD, backend="process", timeout=60.0, transport="shm") as group:
        yield group


@pytest.fixture(scope="module")
def queue_group():
    with open_group(WORLD, backend="process", timeout=60.0, transport="queue") as group:
        yield group


@pytest.mark.parametrize(
    "name,fn,args", RUNNERS, ids=[name for name, _, _ in RUNNERS]
)
def test_collective_identical_across_transports(
    name, fn, args, shm_group, queue_group
):
    reference = run_threaded(WORLD, fn, *args)
    for group in (queue_group, shm_group):
        got = group.run(fn, *args)
        for rank in range(WORLD):
            assert_bit_identical(reference[rank], got[rank])


def test_allreduce_out_returns_buffer(shm_group):
    for _, used_out in shm_group.run(run_allreduce_out):
        assert used_out


class TestFaultedEquivalence:
    """Drops + delays must reorder/retransmit, never change the bits."""

    PLAN = dict(
        seed=11,
        drop_prob=0.08,
        delay_prob=0.15,
        delay_s=0.003,
        reorder_prob=0.1,
        reorder_s=0.005,
        recv_deadline=30.0,
    )

    def test_thread_backend(self):
        reference = run_threaded(WORLD, run_allreduce, "<f4")
        got = run_threaded_with_faults(
            WORLD, run_allreduce, FaultPlan(**self.PLAN), "<f4"
        )
        for rank in range(WORLD):
            assert_bit_identical(reference[rank], got[rank])

    @pytest.mark.slow
    @pytest.mark.parametrize("transport", ["shm", "queue"])
    def test_process_backend(self, transport):
        reference = run_threaded(WORLD, run_allreduce, "<f4")
        got = run_multiprocess_with_faults(
            WORLD,
            run_allreduce,
            FaultPlan(**self.PLAN),
            "<f4",
            transport=transport,
        )
        for rank in range(WORLD):
            assert_bit_identical(reference[rank], got[rank])

    @pytest.mark.slow
    def test_sparse_exchange_under_faults_shm(self):
        reference = run_threaded(WORLD, run_sparse_alltoall)
        got = run_multiprocess_with_faults(
            WORLD, run_sparse_alltoall, FaultPlan(**self.PLAN)
        )
        for rank in range(WORLD):
            assert_bit_identical(reference[rank], got[rank])


class TestDtypePreservation:
    """float32 stays float32 end to end — and pays float32 wire bytes."""

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64]
    )
    def test_collectives_preserve_dtype(self, dtype):
        def fn(comm):
            data = np.arange(24, dtype=dtype) + comm.rank
            return (
                comm.allreduce(data).dtype,
                reduce_scatter(comm, data).dtype,
                tree_allreduce(comm, data).dtype,
                hierarchical_allreduce(comm, data, gpus_per_node=2).dtype,
            )

        for dtypes in run_threaded(WORLD, fn):
            assert all(dt == np.dtype(dtype) for dt in dtypes)

    def test_float32_halves_wire_bytes(self):
        def fn(comm, dtype_str):
            comm.allreduce(np.ones(96, dtype=np.dtype(dtype_str)))
            return comm.bytes_sent

        bytes32 = run_threaded(WORLD, fn, "<f4")
        bytes64 = run_threaded(WORLD, fn, "<f8")
        assert all(2 * b32 == b64 for b32, b64 in zip(bytes32, bytes64))
        # 2(N-1) transfers of n/N elements each.
        assert bytes32[0] == 2 * (WORLD - 1) * (96 // WORLD) * 4


class TestPayloadAccounting:
    """payload_nbytes drives bytes_sent — pin its rules per payload kind."""

    def test_ndarray(self):
        assert payload_nbytes(np.zeros((5, 3), dtype=np.float32)) == 60

    def test_sparse_rows(self):
        s = _sparse(0, rows=10, dim=4)  # 5 int64 indices + 5x4 float32
        assert payload_nbytes(s) == 5 * 8 + 5 * 4 * 4
        assert payload_nbytes(s) == s.nbytes

    def test_python_scalars(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(np.float32(1.0)) == 8

    def test_containers_recurse(self):
        inner = np.ones(4, dtype=np.float64)  # 32 bytes
        assert payload_nbytes((inner, inner)) == 64
        assert payload_nbytes([inner, 1]) == 40
        assert payload_nbytes({"a": inner, "b": 2}) == 40

    def test_bytes_and_strings(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(6)) == 6
        assert payload_nbytes("héllo") == len("héllo".encode())

    def test_none_is_free(self):
        assert payload_nbytes(None) == 0
