"""Tests for repro.schedule.tabular: the declarative schedule IR, its
builders, the cost-model pricing and the TaskGraph compiler."""

import pytest

from repro.engine.trainer_sim import make_context
from repro.models import GNMT8, LM
from repro.schedule import (
    PIPELINE_SCHEDULES,
    SCHEDULE_NAMES,
    Cell,
    TabularSchedule,
    build_schedule,
    bubble_fraction,
    compile_strategy_schedule,
    data_parallel_schedule,
    gpipe_schedule,
    nested_embrace_schedule,
    one_f_one_b_schedule,
)
from repro.sim import execute
from repro.sim.pipeline import chain_steps, steady_state_step_time
from repro.strategies import ALL_STRATEGIES


@pytest.fixture(scope="module")
def ctx():
    return make_context(LM, "rtx3090", 8)


def cells_2x1():
    """A minimal valid 2-stage x 1-microbatch compute grid."""
    return [
        Cell(0, 0, "fwd", 0), Cell(0, 3, "bwd", 0),
        Cell(1, 1, "fwd", 0), Cell(1, 2, "bwd", 0),
    ]


def make(cells, p=2, m=1, comm="flush", name="t"):
    return TabularSchedule(
        name=name, n_stages=p, n_microbatches=m, comm=comm,
        cells=tuple(cells),
    )


class TestValidation:
    def test_minimal_valid(self):
        make(cells_2x1())  # does not raise

    def test_unknown_op(self):
        cells = cells_2x1()
        cells.append(Cell(0, 9, "warp"))
        with pytest.raises(ValueError, match="unknown op"):
            make(cells)

    def test_overlapping_cells(self):
        cells = cells_2x1()
        cells.append(Cell(0, 0, "sync"))
        with pytest.raises(ValueError, match="overlapping"):
            make(cells)

    def test_missing_bwd(self):
        with pytest.raises(ValueError, match="missing bwd"):
            make([
                Cell(0, 0, "fwd", 0), Cell(0, 1, "bwd", 0),
                Cell(1, 1, "fwd", 0),
            ])

    def test_bwd_before_fwd(self):
        with pytest.raises(ValueError, match="does not follow"):
            make([
                Cell(0, 1, "fwd", 0), Cell(0, 0, "bwd", 0),
                Cell(1, 2, "fwd", 0), Cell(1, 3, "bwd", 0),
            ])

    def test_comm_cell_with_microbatch(self):
        cells = cells_2x1()
        cells.append(Cell(0, 9, "sync", 0))
        with pytest.raises(ValueError, match="must not carry"):
            make(cells)

    def test_stage_out_of_range(self):
        cells = cells_2x1()
        cells.append(Cell(5, 9, "sync"))
        with pytest.raises(ValueError, match="outside"):
            make(cells)

    def test_bad_microbatch_id(self):
        with pytest.raises(ValueError, match="microbatch id"):
            make([
                Cell(0, 0, "fwd", 7), Cell(0, 3, "bwd", 0),
                Cell(1, 1, "fwd", 0), Cell(1, 2, "bwd", 0),
            ])


class TestBuilders:
    @pytest.mark.parametrize("name", PIPELINE_SCHEDULES)
    @pytest.mark.parametrize("p,m", [(1, 1), (2, 2), (4, 4), (3, 5)])
    def test_builders_validate(self, name, p, m):
        s = build_schedule(name, p, m)
        assert s.n_stages == p and s.n_microbatches == m
        # 2 compute cells per (stage, microbatch), plus comm cells.
        assert sum(c.op in ("fwd", "bwd") for c in s.cells) == 2 * p * m

    def test_data_parallel_is_degenerate(self):
        s = data_parallel_schedule()
        assert (s.n_stages, s.n_microbatches) == (1, 1)

    def test_build_schedule_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_schedule("zigzag", 2, 2)

    def test_gpipe_flushes_and_1f1b_interleaves(self):
        """GPipe runs every fwd before any bwd on every stage; 1F1B
        alternates, visible on the last stage where B0 precedes F1."""
        p, m = 4, 4
        gp, ob = gpipe_schedule(p, m), one_f_one_b_schedule(p, m)
        for s in range(p):
            assert max(c.slot for c in gp.compute_cells(s, "fwd")) < min(
                c.slot for c in gp.compute_cells(s, "bwd")
            )
        last = p - 1
        assert min(c.slot for c in ob.compute_cells(last, "bwd")) < max(
            c.slot for c in ob.compute_cells(last, "fwd")
        )

    def test_nested_carries_prior_and_delayed(self):
        s = nested_embrace_schedule(4, 4)
        ops = {c.op for c in s.cells}
        assert {"prior", "delayed", "opt"} <= ops
        assert s.comm == "nested"


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", SCHEDULE_NAMES)
    def test_round_trip_equality(self, name):
        s = build_schedule(name, 3, 3)
        assert TabularSchedule.from_json(s.to_json()) == s
        assert TabularSchedule.from_dict(s.to_dict()) == s

    def test_round_trip_revalidates(self):
        s = build_schedule("gpipe", 2, 2)
        d = s.to_dict()
        d["cells"][0]["op"] = "warp"
        with pytest.raises(ValueError, match="unknown op"):
            TabularSchedule.from_dict(d)

    def test_grid_renders(self):
        text = build_schedule("nested", 2, 2).grid()
        assert "stage 0" in text and "stage 1" in text


class TestCompile:
    PRICED = (
        "EmbRace", "Horovod-AllReduce", "Horovod-AllGather",
        "BytePS", "Parallax",
    )

    @pytest.mark.parametrize("strategy", PRICED)
    @pytest.mark.parametrize("schedule", PIPELINE_SCHEDULES)
    def test_all_strategies_compile_and_run(self, ctx, strategy, schedule):
        s = build_schedule(schedule, 2, 2)
        graph = compile_strategy_schedule(ctx, strategy, s, gpu_kind="rtx3090")
        step_s, trace = steady_state_step_time(graph, 3)
        assert step_s > 0
        assert 0.0 <= bubble_fraction(trace, 2) < 1.0

    def test_chains_cleanly(self, ctx):
        """Every bp has its fp twin, so chain_steps accepts the graph."""
        s = build_schedule("nested", 4, 4)
        graph = compile_strategy_schedule(ctx, "EmbRace", s)
        chained = chain_steps(graph, 3)
        assert len(chained) == 3 * len(graph)

    def test_nested_emits_prior_and_delayed_exchanges(self, ctx):
        graph = compile_strategy_schedule(
            ctx, "EmbRace", build_schedule("nested", 2, 2)
        )
        names = set(graph.tasks)
        assert any(n.startswith("a2a_prior:") for n in names)
        assert any(n.startswith("a2a_delayed:") for n in names)

    def test_gpipe_bubble_exceeds_1f1b(self, ctx):
        """At paper scale the synchronous flush idles the stages more
        than 1F1B's interleaving (the classic bubble ordering)."""
        fractions = {}
        for name in ("gpipe", "1f1b"):
            graph = compile_strategy_schedule(
                ctx, "EmbRace", build_schedule(name, 4, 4)
            )
            _, trace = steady_state_step_time(graph, 4)
            fractions[name] = bubble_fraction(trace, 4)
        assert fractions["1f1b"] < fractions["gpipe"]

    def test_nested_beats_gpipe_for_embrace(self):
        """EmbRace's prior/delayed split rides the stage bubbles, so the
        nested schedule's steady-state step beats GPipe's flush."""
        for config in (LM, GNMT8):
            ctx = make_context(config, "rtx3090", 8)
            times = {}
            for name in ("gpipe", "nested"):
                graph = compile_strategy_schedule(
                    ctx, "EmbRace", build_schedule(name, 4, 4)
                )
                times[name], _ = steady_state_step_time(graph, 4)
            assert times["nested"] < times["gpipe"]

    def test_degenerate_single_stage_matches_strategy_sim(self, ctx):
        """Parity: a 1-stage 1-microbatch table prices the same workload
        as the strategy's own step graph, so the two simulators must
        agree within a coarse-graining factor (the table lumps all
        blocks into one fwd/bwd, losing per-block overlap)."""
        from repro.engine.step_simulator import simulate_step

        report = simulate_step(ALL_STRATEGIES["EmbRace"](), ctx)
        graph = compile_strategy_schedule(
            ctx, "EmbRace", build_schedule("nested", 1, 1)
        )
        step_s, _ = steady_state_step_time(graph, 4)
        assert 0.5 < step_s / report.step_time < 2.5


class TestRealParity:
    def test_sim_and_real_agree_on_overlap_direction(self):
        """Parity with the real backend on the one schedule both layers
        execute (data_parallel): overlapping communication must not
        increase the measured stall, exactly as the simulator predicts
        EmbRace stalls no more than the synchronous AllReduce."""
        from repro.comm import open_group
        from repro.engine.step_simulator import simulate_step
        from repro.engine.trainer_real import RealTrainer
        from repro.models.config import ALL_MODELS

        ctx = make_context(LM, "rtx3090", 8)
        sim = {
            name: simulate_step(ALL_STRATEGIES[name](), ctx)
            for name in ("EmbRace", "Horovod-AllReduce")
        }
        assert (
            sim["EmbRace"].computation_stall
            <= sim["Horovod-AllReduce"].computation_stall + 1e-9
        )

        config = ALL_MODELS["LM"].tiny()
        stall = {}
        for overlap in (True, False):
            with open_group(
                2, backend="process", transport="shm", trace=True
            ) as g:
                result = RealTrainer(
                    config,
                    strategy="embrace",
                    world_size=2,
                    steps=4,
                    seed=0,
                    overlap=overlap,
                    group=g,
                ).train()
            bundle = result.trace
            stall[overlap] = (
                sum(bundle.computation_stall(r) for r in range(2))
                / (2 * bundle.trace.makespan)
            )
        for frac in stall.values():
            assert 0.0 <= frac <= 1.0
        # Generous tolerance: tiny CPU runs are noisy, but overlap must
        # not make the stall dramatically worse.
        assert stall[True] <= stall[False] + 0.15
