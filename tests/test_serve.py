"""repro.serve: admission batching, version fences, and the online service.

The headline contracts under test:

* **bit-identity** — losses and final tables of the concurrent
  serve+train loop equal :func:`repro.serve.offline_reference` exactly,
  on both backends, at any serve load;
* **snapshot consistency** — every served batch carries exactly one
  table version, and its bytes equal the offline snapshot at that
  version (the torn-read hammer does the same at the seqlock level,
  with real racing threads);
* **graceful shutdown** — a ``KeyboardInterrupt`` mid-serve drains
  in-flight batches, cancels the queue, and exits every rank cleanly
  (process backend: without leaking ``/dev/shm`` segments).
"""

import glob
import threading
import time

import numpy as np
import pytest

from repro.nn.embedding import Embedding
from repro.optim import EmbraceAdam
from repro.serve import (
    AdmissionQueue,
    LookupRequest,
    ServeConfig,
    ShardedEmbeddingService,
    SparseEmbeddingTask,
    VersionedShardStore,
    ZipfRequestLoad,
    build_tables,
    offline_reference,
)
from repro.tensors import SparseRows


def _req(table="t", n=4, vocab=64):
    return LookupRequest(table, np.arange(n, dtype=np.int64) % vocab)


# --------------------------------------------------------------------- #
# admission batching
# --------------------------------------------------------------------- #
class TestAdmissionQueue:
    def test_releases_at_max_batch(self):
        q = AdmissionQueue(max_batch=3, max_delay_s=60.0)
        reqs = [_req() for _ in range(4)]
        for r in reqs:
            assert q.submit(r)
        table, batch = q.next_batch(0.0)
        assert table == "t" and batch == reqs[:3]
        assert len(q) == 1
        # The leftover is below max_batch and young: not ripe yet.
        assert q.next_batch(0.0) is None

    def test_releases_at_max_delay(self):
        q = AdmissionQueue(max_batch=100, max_delay_s=0.01)
        r = _req()
        q.submit(r)
        assert q.next_batch(0.0) is None  # young head, poll returns nothing
        t0 = time.perf_counter()
        got = q.next_batch(1.0)
        assert got == ("t", [r])
        assert time.perf_counter() - t0 < 0.5  # waited ~max_delay, not timeout

    def test_batches_never_mix_tables(self):
        q = AdmissionQueue(max_batch=2, max_delay_s=60.0)
        a1, b1, a2 = _req("a"), _req("b"), _req("a")
        for r in (a1, b1, a2):
            q.submit(r)
        table, batch = q.next_batch(0.0)
        assert table == "a" and batch == [a1, a2]

    def test_timeout_poll_returns_none_when_empty(self):
        q = AdmissionQueue(max_batch=2, max_delay_s=0.001)
        t0 = time.perf_counter()
        assert q.next_batch(0.05) is None
        assert time.perf_counter() - t0 >= 0.04

    def test_close_cancels_new_and_ripens_queued(self):
        q = AdmissionQueue(max_batch=100, max_delay_s=60.0)
        queued = _req()
        q.submit(queued)
        q.close()
        late = _req()
        assert not q.submit(late)
        assert late.cancelled and late.done()
        # Closed queue: the young, undersized head is released at once.
        assert q.next_batch(0.0) == ("t", [queued])

    def test_cancel_pending_counts_and_cancels(self):
        q = AdmissionQueue(max_batch=100, max_delay_s=60.0)
        reqs = [_req() for _ in range(3)]
        for r in reqs:
            q.submit(r)
        assert q.cancel_pending() == 3
        assert all(r.cancelled for r in reqs)
        assert len(q) == 0


# --------------------------------------------------------------------- #
# request load
# --------------------------------------------------------------------- #
class TestZipfRequestLoad:
    def test_deterministic_per_client(self):
        load = ZipfRequestLoad(512, ("a", "b"), ids_per_request=8, seed=3)
        runs = []
        for _ in range(2):
            rng = load.client_rng(1)
            runs.append(
                [load.make_request(rng, 1, i) for i in range(5)]
            )
        for r1, r2 in zip(*runs):
            assert r1.table == r2.table
            assert np.array_equal(r1.ids, r2.ids)
        # A different client draws a different stream.
        other = load.make_request(load.client_rng(2), 2, 0)
        assert not np.array_equal(other.ids, runs[0][0].ids)

    def test_round_robins_tables_with_client_phase(self):
        load = ZipfRequestLoad(64, ("a", "b"), ids_per_request=2, seed=0)
        rng = load.client_rng(0)
        tables = [load.make_request(rng, 0, i).table for i in range(4)]
        assert tables == ["a", "b", "a", "b"]
        rng = load.client_rng(1)
        assert load.make_request(rng, 1, 0).table == "b"  # phase offset

    def test_zipfian_skew(self):
        load = ZipfRequestLoad(1024, ("t",), ids_per_request=64, seed=0)
        rng = load.client_rng(0)
        ids = np.concatenate(
            [load.make_request(rng, 0, i).ids for i in range(64)]
        )
        counts = np.bincount(ids, minlength=1024)
        assert counts[0] > counts[10] > counts[500]


# --------------------------------------------------------------------- #
# seqlock torn-read hammer
# --------------------------------------------------------------------- #
class _FakeRuntime:
    """Single-rank runtime stand-in: full table is 'this rank's shard'."""

    def __init__(self, table, lr=5e-2):
        self.table = table
        self.my_columns = slice(0, table.embedding_dim)
        self._opt = EmbraceAdam([table.weight], lr=lr)

    def apply_part(self, shard_grad, final):
        self._opt.apply_sparse_part(self.table.weight, shard_grad, final=final)


class TestVersionFenceHammer:
    def test_no_torn_reads_under_concurrent_adam_updates(self):
        vocab, dim, steps = 64, 16, 60
        rng = np.random.default_rng(0)
        table = Embedding(vocab, dim, rng=rng, name="t")
        store = VersionedShardStore(_FakeRuntime(table))
        snapshots = {0: table.weight.data.copy()}
        ids = np.arange(vocab, dtype=np.int64)
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                version, block = store.read_rows(ids)
                expect = snapshots.get(version)
                if expect is None:
                    failures.append(f"unknown version {version}")
                    return
                if not np.array_equal(block, expect):
                    failures.append(f"torn read at version {version}")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        grad_rng = np.random.default_rng(1)
        for step in range(steps):
            grad = SparseRows(
                ids.copy(),
                grad_rng.standard_normal((vocab, dim)),
                num_rows=vocab,
                coalesced=True,
            )
            # Snapshot *before* publishing the new version: a reader
            # must never observe version v+1 rows before snapshots[v+1]
            # exists, so compute the post-state on a copy first.
            store.fence.begin_write()
            try:
                store.runtime.apply_part(grad, final=True)
                snapshots[step + 1] = table.weight.data.copy()
            finally:
                store.fence.end_write()
            time.sleep(0)  # let readers interleave
        stop.set()
        for t in readers:
            t.join(timeout=30)
        assert not failures, failures
        assert store.version == steps


# --------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------- #
def _assert_bit_identical_and_consistent(cfg, report):
    losses, final, snaps = offline_reference(cfg, snapshots=True)
    assert report.losses == losses  # bit-identical, not approx
    for name in cfg.tables:
        assert np.array_equal(report.final_tables[name], final[name])
    assert report.torn_batches == 0
    assert all(v >= 0 for v in report.batch_versions)
    # Every served byte equals the offline snapshot at the batch version.
    assert report.serve_results, "record_serve_results produced nothing"
    for table, ids, version, values in report.serve_results:
        assert np.array_equal(values, snaps[version][table][ids])


class TestShardedEmbeddingService:
    def test_thread_backend_serves_during_training(self):
        cfg = ServeConfig(
            world_size=2,
            backend="thread",
            clients=2,
            requests_per_client=15,
            train_steps=6,
            record_serve_results=True,
            trace=True,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert report.requests_served == cfg.total_requests
        assert report.steps_done == cfg.train_steps
        assert report.batches > 0 and report.p99_ms > 0
        _assert_bit_identical_and_consistent(cfg, report)
        # Interference is observable: the serve lane recorded spans and
        # both id streams fed the hot-row counters.
        assert report.trace.busy_time("serve", 0) > 0
        assert report.trace.row_tables() == ["embedding"]
        hot = report.trace.hot_rows("embedding", 3)
        assert hot and hot[0][0] == 0  # Zipf head row dominates

    def test_multi_table_and_serve_load_does_not_perturb_training(self):
        quiet = ServeConfig(
            world_size=2,
            backend="thread",
            tables=("emb_a", "emb_b"),
            clients=1,
            requests_per_client=2,
            train_steps=5,
        )
        busy = ServeConfig(
            world_size=2,
            backend="thread",
            tables=("emb_a", "emb_b"),
            clients=3,
            requests_per_client=25,
            train_steps=5,
        )
        with ShardedEmbeddingService(quiet) as service:
            quiet_report = service.run()
        with ShardedEmbeddingService(busy) as service:
            busy_report = service.run()
        # Same training arithmetic regardless of serve pressure.
        assert quiet_report.losses == busy_report.losses
        _, final, _ = offline_reference(busy)
        for name in busy.tables:
            assert np.array_equal(busy_report.final_tables[name], final[name])

    def test_sync_mode_matches_overlapped(self):
        base = dict(
            world_size=2, backend="thread", clients=2,
            requests_per_client=8, train_steps=4,
        )
        with ShardedEmbeddingService(ServeConfig(**base, overlap=True)) as s:
            overlapped = s.run()
        with ShardedEmbeddingService(ServeConfig(**base, overlap=False)) as s:
            synchronous = s.run()
        assert overlapped.losses == synchronous.losses

    def test_world_size_one(self):
        cfg = ServeConfig(
            world_size=1, backend="thread", clients=1,
            requests_per_client=5, train_steps=3, record_serve_results=True,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert report.requests_served == 5
        _assert_bit_identical_and_consistent(cfg, report)

    def test_process_backend_fast(self):
        cfg = ServeConfig(
            world_size=2,
            backend="process",
            clients=2,
            requests_per_client=8,
            train_steps=4,
            record_serve_results=True,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert report.requests_served == cfg.total_requests
        _assert_bit_identical_and_consistent(cfg, report)

    @pytest.mark.slow
    def test_process_backend_four_ranks_shm(self):
        cfg = ServeConfig(
            world_size=4,
            backend="process",
            transport="shm",
            clients=3,
            requests_per_client=10,
            train_steps=5,
            record_serve_results=True,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert report.requests_served == cfg.total_requests
        _assert_bit_identical_and_consistent(cfg, report)
        assert glob.glob("/dev/shm/repro-*") == []


# --------------------------------------------------------------------- #
# graceful shutdown
# --------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_interrupt_drains_and_exits_cleanly(self):
        cfg = ServeConfig(
            world_size=2,
            backend="thread",
            clients=2,
            requests_per_client=10_000,  # far more than the interrupt allows
            train_steps=10_000,
            interrupt_after=12,
        )
        t0 = time.perf_counter()
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert time.perf_counter() - t0 < 60
        assert report.interrupted
        assert report.torn_batches == 0
        assert report.requests_served < cfg.total_requests
        # Every request a client submitted was resolved one way or the
        # other — nobody is left blocked on a dead service.
        assert report.requests_served + report.requests_cancelled > 0
        # The group survives: a fresh run on the same service world works.
        follow_up = ServeConfig(
            world_size=2, backend="thread", clients=1,
            requests_per_client=3, train_steps=2,
        )
        with ShardedEmbeddingService(follow_up) as service:
            assert service.run().requests_served == 3

    def test_interrupt_before_any_op(self):
        cfg = ServeConfig(
            world_size=2, backend="thread", clients=1,
            requests_per_client=100, train_steps=100, interrupt_after=0,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
        assert report.interrupted
        assert report.steps_done <= 1  # at most the drain's commit

    @pytest.mark.slow
    def test_process_backend_interrupt_leaves_no_shm(self):
        cfg = ServeConfig(
            world_size=2,
            backend="process",
            transport="shm",
            clients=2,
            requests_per_client=10_000,
            train_steps=10_000,
            interrupt_after=20,
        )
        with ShardedEmbeddingService(cfg) as service:
            report = service.run()
            assert report.interrupted
            assert report.torn_batches == 0
            # Pool still healthy after the drain: run again on it.
            rerun = ShardedEmbeddingService(
                ServeConfig(
                    world_size=2, backend="process", clients=1,
                    requests_per_client=3, train_steps=2,
                ),
                group=service.group,
            ).run()
            assert rerun.requests_served == 3
        assert glob.glob("/dev/shm/repro-*") == []


# --------------------------------------------------------------------- #
# config and online-reference plumbing
# --------------------------------------------------------------------- #
class TestOnlineReference:
    def test_build_tables_deterministic(self):
        cfg = ServeConfig(tables=("a", "b"))
        t1, t2 = build_tables(cfg), build_tables(cfg)
        for name in cfg.tables:
            assert np.array_equal(t1[name].weight.data, t2[name].weight.data)
        assert not np.array_equal(t1["a"].weight.data, t1["b"].weight.data)

    def test_snapshots_chain_to_final(self):
        cfg = ServeConfig(train_steps=4, world_size=2)
        losses, final, snaps = offline_reference(cfg, snapshots=True)
        assert len(losses) == 4 and sorted(snaps) == [0, 1, 2, 3, 4]
        assert np.array_equal(snaps[4]["embedding"], final["embedding"])
        assert not np.array_equal(snaps[0]["embedding"], final["embedding"])

    def test_task_gradient_is_row_sparse_and_correct(self):
        task = SparseEmbeddingTask(vocab=32, dim=4, seed=0)
        weight = np.zeros((32, 4))
        ids = np.array([1, 1, 5], dtype=np.int64)
        loss, grad = task.loss_and_grad(weight, ids)
        assert grad.num_rows == 32 and grad.nnz_rows == 3
        expect = 0.5 * float(np.mean(task.targets[ids] ** 2))
        assert loss == pytest.approx(expect)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(tables=())
        with pytest.raises(ValueError):
            ServeConfig(tables=("a", "a"))
        with pytest.raises(ValueError):
            ServeConfig(backend="mpi")
        with pytest.raises(ValueError):
            ServeConfig(interrupt_after=-1)
